"""Command-line interface: canned demos and the experiment index.

Usage::

    python -m repro demo paris --hours 3
    python -m repro demo sensor-map --users 3 --minutes 60
    python -m repro chaos --plan broker-restart --minutes 10
    python -m repro obs --scenario paris --ticks 900
    python -m repro slo --plan slo-burn --minutes 10
    python -m repro experiments
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__

EXPERIMENTS = [
    ("table1", "benchmarks/test_table1_source_code.py",
     "source code details (mobile vs server LOC)"),
    ("table2", "benchmarks/test_table2_memory.py",
     "memory footprint vs GAR"),
    ("figure4", "benchmarks/test_figure4_energy.py",
     "battery charge per sensing cycle"),
    ("table3", "benchmarks/test_table3_delay.py",
     "OSN notification delay"),
    ("table4", "benchmarks/test_table4_osn_burst.py",
     "battery vs burst of OSN actions"),
    ("figure5", "benchmarks/test_figure5_cpu.py",
     "CPU load vs number of streams"),
    ("table5", "benchmarks/test_table5_programming_effort.py",
     "programming effort with/without the middleware"),
    ("ablation-push", "benchmarks/test_ablation_push_vs_poll.py",
     "MQTT push vs HTTP polling"),
    ("ablation-filter", "benchmarks/test_ablation_filter_energy.py",
     "filter placement energy savings"),
    ("ablation-db", "benchmarks/test_ablation_db_indexing.py",
     "document-store indexing"),
    ("recovery", "benchmarks/test_recovery_delay.py",
     "time-to-recovery and zero-loss under faults"),
    ("wal-overhead", "benchmarks/test_wal_overhead.py",
     "write-ahead journal overhead bound"),
    ("hotpath", "benchmarks/test_hotpath_perf.py",
     "broker trie / query planner / ingest hot paths"),
    ("cluster-scaling", "benchmarks/test_cluster_scaling.py",
     "sharded-cluster work scaling and crash zero-loss"),
]


def _demo_paris(args) -> int:
    from repro import Granularity, ModalityType, MulticastQuery
    from repro.scenarios import build_paris_scenario

    testbed = build_paris_scenario(seed=args.seed)
    testbed.run(400.0)
    notified = []
    multicast = testbed.server.create_multicast_stream(
        ModalityType.LOCATION, Granularity.CLASSIFIED,
        MulticastQuery(friends_of="A"), name="friends-of-A")
    multicast.add_listener(lambda record: notified.append(record)
                           if record.value == "Paris" else None)
    print(f"users: {', '.join(sorted(testbed.nodes))}; "
          f"A's friends: {testbed.server.database.friends_of('A')}")
    print("C travels Bordeaux -> Paris...")
    testbed.node("C").mobility.travel_to("Paris",
                                         duration_s=args.hours * 1800.0)
    testbed.run(args.hours * 3600.0)
    arrivals = sorted({record.user_id for record in notified})
    print(f"friends seen in Paris: {arrivals or 'none'}")
    return 0 if arrivals == ["C"] else 1


def _demo_sensor_map(args) -> int:
    from repro import SenSocialTestbed
    from repro.analysis import markers_to_geojson
    from repro.apps.sensor_map import (
        FacebookSensorMapServer,
        FacebookSensorMapService,
    )

    testbed = SenSocialTestbed(seed=args.seed)
    map_server = FacebookSensorMapServer(testbed.server)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(args.users):
        node = testbed.add_user(f"user{index}",
                                home_city=cities[index % len(cities)])
        FacebookSensorMapService(node.manager)
    testbed.workload.actions_per_hour = 6.0
    testbed.workload.start_all()
    testbed.run(args.minutes * 60.0)
    geojson = markers_to_geojson(map_server.markers())
    print(f"markers: {len(map_server.markers())} "
          f"({map_server.complete_marker_count()} complete); "
          f"geojson features: {len(geojson['features'])}")
    for feature in geojson["features"][:5]:
        properties = feature["properties"]
        print(f"  {properties['user_id']}: {properties['action_type']} "
              f"while {properties['activity']}")
    return 0


def _chaos_scenario(args) -> int:
    """Population-scale chaos: run a named scenario's partition episode
    and judge it on the store-carry-forward accounting invariant."""
    from repro.perf import bench_scenario, write_report
    from repro.perf.harness import format_scenario_summary

    entry = bench_scenario(
        args.scenario, args.devices, seed=args.seed,
        scheduler=args.scheduler, active_cap=args.active_cap, chaos=True)
    print(format_scenario_summary(entry))
    report = entry["scenario"]
    problems = list(report["verify_problems"])
    if report["flushes"] == 0:
        problems.append("partition episode produced no reconnect flushes")
    for problem in problems:
        print(f"INCONSISTENT: {problem}", file=sys.stderr)
    if args.output:
        write_report(entry, path=args.output)
    return 1 if problems else 0


def _chaos(args) -> int:
    from repro import Granularity, ModalityType, SenSocialTestbed
    from repro.faults import ChaosController, build_plan

    if args.scenario:
        return _chaos_scenario(args)
    horizon = args.minutes * 60.0
    plan = build_plan(args.plan, horizon)
    # A plan that declares expected SLO alerts needs the control plane
    # (and the durable ingest path its storage faults act on); plans
    # that damage the journal itself need a journal to damage.
    slo = getattr(args, "slo", False) or bool(plan.expected_alerts)
    durability = args.durability or slo or plan.needs_durable_journal
    testbed = SenSocialTestbed(seed=args.seed, observability=args.obs,
                               durability=durability, slo=slo)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(args.users):
        node = testbed.add_user(f"user{index}",
                                home_city=cities[index % len(cities)])
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    controller.apply(plan)
    testbed.run(horizon)
    # Quiet tail: let reconnects land and outboxes drain before judging.
    testbed.run(args.drain)
    report = controller.report()
    print(report.format())
    failed = report.records_lost != 0
    if testbed.slo is not None:
        unfired = [name for name in plan.expected_alerts
                   if not testbed.slo.log.fired(name)]
        for name in unfired:
            print(f"EXPECTED ALERT NEVER FIRED: {name}", file=sys.stderr)
        problems = testbed.slo.log.verify(testbed.slo.evaluator.alerts)
        for problem in problems:
            print(f"ALERT ACCOUNTING: {problem}", file=sys.stderr)
        failed = failed or unfired or problems
    failed = _check_recovery_expectations(plan, report) or failed
    return 1 if failed else 0


def _check_recovery_expectations(plan, report) -> bool:
    """Durable runs must account every injected corruption — and show
    none the plan didn't declare.  The expectations derive from the
    plan's own events (one torn frame per ``journal_torn_write``, ...),
    so an *undeclared* quarantined/torn frame fails the run loudly.
    Returns True when the run must fail."""
    durability = report.server.get("durability")
    if durability is None:
        return False
    counters = durability.get("counters", {})
    failed = False
    for name, want in sorted(plan.expected_recovery().items()):
        got = int(counters.get(name, 0))
        if got != want:
            print(f"RECOVERY ACCOUNTING: {name} = {got}, "
                  f"plan expected {want}", file=sys.stderr)
            failed = True
    return failed


def _replay(args) -> int:
    """Run a (possibly chaotic) durable scenario, then re-derive every
    store from its journal and fingerprint-compare against the live
    state — the divergence oracle.  ``--verify`` exits 1 on mismatch."""
    from repro import Granularity, ModalityType, SenSocialTestbed
    from repro.faults import ChaosController, build_plan

    horizon = args.minutes * 60.0
    plan = build_plan(args.plan, horizon)
    testbed = SenSocialTestbed(seed=args.seed, durability=True,
                               shards=args.shards)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(args.users):
        node = testbed.add_user(f"user{index}",
                                home_city=cities[index % len(cities)])
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    if not plan.is_empty:
        controller.apply(plan)
    testbed.run(horizon)
    testbed.run(args.drain)
    server = testbed.server
    if hasattr(server, "verify_replay"):  # sharded cluster coordinator
        verdict = server.verify_replay()
    else:
        doc = server.durability.verify_replay()
        verdict = {"match": doc["match"], "shards_verified": 1,
                   "shards": {"server": doc}}
    print(f"replay report — plan {plan.name!r} @ {testbed.world.now:.1f}s "
          f"({verdict['shards_verified']} store(s) verified)")
    for name, doc in sorted(verdict["shards"].items()):
        scan = doc["scan"]
        state = "match" if doc["match"] else "DIVERGED"
        print(f"  {name:12s} {state:9s} live={doc['live_fingerprint']} "
              f"replayed={doc['replayed_fingerprint']}")
        print(f"  {'':12s} {doc['replayed']} entries replayed "
              f"({doc['replay_failed']} failed, "
              f"{doc['lost_appends']} lost appends), "
              f"snapshot {scan['snapshot_status']}, "
              f"{scan['scanned_frames']} frames scanned "
              f"({scan['quarantined_frames']} quarantined, "
              f"{scan['torn_frames']} torn)")
    if args.backfill:
        # Bounded, idempotent backfill demo over the retained history:
        # batches of --backfill entries, resumed from the returned
        # progress checkpoint until the window is exhausted.
        durability = getattr(server, "durability", None)
        republished: list = []
        checkpoint, batches = None, 0
        while True:
            checkpoint = durability.backfill(republished.append,
                                             limit=args.backfill,
                                             checkpoint=checkpoint)
            batches += 1
            if checkpoint.exhausted:
                break
        print(f"  backfill     {checkpoint.published} ingest entries "
              f"re-published in {batches} batches of <= {args.backfill}")
    if not verdict["match"]:
        diverged = [name for name, doc in sorted(verdict["shards"].items())
                    if not doc["match"]]
        print(f"REPLAY DIVERGENCE: live state does not match the "
              f"journal-derived state on {', '.join(diverged)}",
              file=sys.stderr)
        if args.verify:
            return 1
    return 0


def _slo(args) -> int:
    from repro import Granularity, ModalityType, SenSocialTestbed
    from repro.faults import ChaosController, build_plan

    horizon = args.minutes * 60.0
    plan = build_plan(args.plan, horizon)
    testbed = SenSocialTestbed(seed=args.seed, durability=True, slo=True,
                               shards=args.shards)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(args.users):
        node = testbed.add_user(f"user{index}",
                                home_city=cities[index % len(cities)])
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    controller = ChaosController(testbed)
    if not plan.is_empty:
        controller.apply(plan)
    testbed.run(horizon)
    testbed.run(args.drain)
    plane = testbed.slo
    report = plane.report()
    print(f"slo report — plan {plan.name!r} @ {testbed.world.now:.1f}s")
    print(f"  evaluations          {report['evaluations']}")
    for name in sorted(report["slos"]):
        doc = report["slos"][name]
        print(f"  {name:22s} {doc['state']:9s} "
              f"err={doc['last_error']:5.3f} "
              f"fast={doc['burn_fast']:6.2f} slow={doc['burn_slow']:6.2f} "
              f"fired={doc['firings']} resolved={doc['resolutions']}")
    if report["alert_log"]:
        print("  alert transitions:")
        for entry in report["alert_log"]:
            print(f"    [{entry['at']:8.1f}s] {entry['alert']:22s} "
                  f"{entry['from']} -> {entry['to']} "
                  f"({entry['severity'] or '-'})")
    actions = report["actions"]
    print(f"  actions: backoff x{actions['backoff_factor']}, "
          f"{actions['backoffs_pushed']} backoffs, "
          f"{actions['restores_pushed']} restores, "
          f"{actions['rate_pushes']} rate pushes, "
          f"{actions['autoscales']} autoscales")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(plane.to_jsonl())
        print(f"  alert log written to {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(plane.to_prometheus())
        print(f"  alert states written to {args.prom}")
    unfired = [name for name in plan.expected_alerts
               if not plane.log.fired(name)]
    for name in unfired:
        print(f"EXPECTED ALERT NEVER FIRED: {name}", file=sys.stderr)
    problems = report["accounting_problems"]
    for problem in problems:
        print(f"ALERT ACCOUNTING: {problem}", file=sys.stderr)
    return 1 if (unfired or problems) else 0


def _obs(args) -> int:
    from repro import Granularity, ModalityType
    from repro.scenarios import build_paris_scenario

    testbed = build_paris_scenario(seed=args.seed, observability=True)
    for node in testbed.nodes.values():
        node.manager.create_stream(ModalityType.ACCELEROMETER,
                                   Granularity.CLASSIFIED,
                                   send_to_server=True)
    testbed.run(args.ticks)
    # Quiet tail so in-flight records settle into terminal states.
    testbed.run(args.drain)
    depths = {f"outbox:{user_id}": len(node.manager.outbox)
              for user_id, node in sorted(testbed.nodes.items())}
    report = testbed.obs.report(queue_depths=depths, network=testbed.network)
    print(report.format())
    db_health = testbed.server.database.health()
    print(f"\nserver database: {db_health['status']} — "
          f"{db_health['detail']}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(testbed.obs.tracer.to_jsonl())
        print(f"\nspan log written to {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(testbed.obs.telemetry.to_prometheus())
        print(f"metrics dump written to {args.prom}")
    return 0


def _cluster(args) -> int:
    from repro import Granularity, ModalityType, SenSocialTestbed
    from repro.faults import ChaosController, FaultPlan

    horizon = args.minutes * 60.0
    testbed = SenSocialTestbed(seed=args.seed, shards=args.shards,
                               durability=args.durability)
    cities = ["Paris", "Bordeaux", "London"]
    for index in range(args.users):
        testbed.add_user(f"user{index:02d}",
                         home_city=cities[index % len(cities)])
    for user_id in sorted(testbed.nodes):
        testbed.server.create_stream(user_id, ModalityType.ACCELEROMETER,
                                     Granularity.CLASSIFIED)
    controller = ChaosController(testbed)
    plan = FaultPlan("cluster-lifecycle")
    if args.crash_shard is not None:
        plan.shard_crash(at=horizon * 0.4, shard=args.crash_shard,
                         rebalance_after=args.rebalance_after)
    if args.add_shard_at is not None:
        plan.shard_add(at=args.add_shard_at, strategy=args.add_strategy)
    if args.remove_shard is not None:
        plan.shard_drain(at=args.remove_shard_at, shard=args.remove_shard)
    if args.rolling_upgrade_at is not None:
        plan.rolling_upgrade(at=args.rolling_upgrade_at,
                             stagger=args.upgrade_stagger)
    if not plan.is_empty:
        controller.apply(plan)
    testbed.run(horizon)
    testbed.run(args.drain)  # quiet tail: let outboxes drain first
    report = controller.report()
    cluster = testbed.server.cluster_report()
    print(report.format())
    print("\ncluster:")
    print(f"  shards               {cluster['active']}/{cluster['shards']} "
          f"active, {cluster['rebalances']} rebalances, "
          f"{cluster['scale_outs']} scale-outs, "
          f"{cluster['scale_ins']} scale-ins, "
          f"{cluster['rolling_upgrades']} rolling upgrades")
    for shard_id in sorted(cluster["work"]):
        devices = len(cluster["devices"].get(shard_id, []))
        print(f"  {shard_id:12s} work={cluster['work'][shard_id]:<6d} "
              f"records={cluster['records'][shard_id]:<6d} "
              f"devices={devices}")
    elasticity = cluster["elasticity"]
    print(f"  work skew            {elasticity['skew']:.2f} "
          f"(hot: {', '.join(elasticity['hot_shards']) or 'none'})")
    if cluster["lifecycle"]:
        print("\nlifecycle:")
        for entry in cluster["lifecycle"]:
            timings = " ".join(
                f"{step}={seconds * 1000.0:.1f}ms" for step, seconds
                in entry.get("step_timings_s", {}).items())
            detail = ""
            if "moved_devices" in entry:
                detail += f" moved={entry['moved_devices']}"
            if "migrated" in entry:
                migrated = entry["migrated"]
                detail += (f" users={migrated['users']} "
                           f"records={migrated['records']} "
                           f"dedup={migrated['dedup_ids']}")
            if "drained" in entry:
                detail += f" drained={entry['drained']}"
            subject = entry.get("shard") or ",".join(
                entry.get("shards", entry.get("retired", [])))
            print(f"  t={entry['at']:<8.1f} {entry['op']:16s} "
                  f"{subject:12s}{detail} {timings}".rstrip())
    problems = testbed.server.verify_consistent()
    for problem in problems:
        print(f"INCONSISTENT: {problem}", file=sys.stderr)
    return 0 if report.records_lost == 0 and not problems else 1


def _perf(args) -> int:
    from repro.perf import bench_scenario, run_all, write_report
    from repro.perf.harness import format_scenario_summary, format_summary

    if args.scenario:
        entry = bench_scenario(
            args.scenario, args.devices, seed=args.seed,
            substrate=args.substrate, scheduler=args.scheduler,
            sim_seconds=args.sim_seconds,
            events_per_device=args.events_per_device,
            active_cap=args.active_cap)
        print(format_scenario_summary(entry))
        failed = bool(entry["scenario"]["verify_problems"])
    else:
        entry = run_all(quick=args.quick)
        print(format_summary(entry))
        failed = False
    if not args.no_write:
        document = write_report(entry, path=args.output)
        print(f"\nperf trajectory: {args.output} "
              f"({len(document['history'])} entries)")
    return 1 if failed else 0


def _experiments(args) -> int:
    print(f"{'id':16s} {'bench':48s} description")
    for exp_id, path, description in EXPERIMENTS:
        print(f"{exp_id:16s} {path:48s} {description}")
    print("\nrun all with: pytest benchmarks/ --benchmark-only")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SenSocial reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a canned scenario")
    demo_sub = demo.add_subparsers(dest="scenario", required=True)

    paris = demo_sub.add_parser("paris", help="Figure 2 geo notifications")
    paris.add_argument("--seed", type=int, default=2)
    paris.add_argument("--hours", type=float, default=3.0)
    paris.set_defaults(handler=_demo_paris)

    sensor_map = demo_sub.add_parser("sensor-map",
                                     help="Facebook Sensor Map (§6.1)")
    sensor_map.add_argument("--seed", type=int, default=6)
    sensor_map.add_argument("--users", type=int, default=3)
    sensor_map.add_argument("--minutes", type=float, default=60.0)
    sensor_map.set_defaults(handler=_demo_sensor_map)

    from repro.faults.plans import NAMED_PLANS

    chaos = subparsers.add_parser(
        "chaos", help="run a scenario under a named fault plan")
    chaos.add_argument("--plan", choices=sorted(NAMED_PLANS),
                       default="broker-restart")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--users", type=int, default=3)
    chaos.add_argument("--minutes", type=float, default=10.0)
    chaos.add_argument("--drain", type=float, default=120.0,
                       help="quiet seconds appended before the report")
    chaos.add_argument("--obs", action="store_true",
                       help="enable record tracing and attach the obs "
                            "section to the chaos report")
    chaos.add_argument("--durability", action="store_true",
                       help="journaled server: write-ahead log, crash "
                            "recovery, admission control (required by "
                            "server-crash / storage-stress plans)")
    chaos.add_argument("--scenario", default=None,
                       help="run a named population scenario's chaos "
                            "episode (e.g. flash-crowd) instead of a "
                            "fault plan")
    chaos.add_argument("--devices", type=int, default=10_000,
                       help="population size for --scenario chaos runs")
    chaos.add_argument("--scheduler", choices=("heap", "wheel"),
                       default="wheel",
                       help="event queue for --scenario chaos runs")
    chaos.add_argument("--active-cap", type=int, default=4096,
                       help="max resident devices for --scenario runs")
    chaos.add_argument("--output", default=None,
                       help="append the --scenario chaos datapoint to "
                            "this perf trajectory file")
    chaos.add_argument("--slo", action="store_true",
                       help="deploy the SLO control plane (burn-rate "
                            "alerts + adaptive sensing backoff); implied "
                            "by plans that declare expected alerts")
    chaos.set_defaults(handler=_chaos)

    replay = subparsers.add_parser(
        "replay", help="run a durable scenario, re-derive every store "
                       "from snapshot+journal, and fingerprint-compare "
                       "against the live state")
    replay.add_argument("--plan", choices=sorted(NAMED_PLANS),
                        default="none",
                        help="optional fault plan to run underneath")
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument("--users", type=int, default=3)
    replay.add_argument("--shards", type=int, default=None,
                        help="deploy a sharded cluster and verify each "
                             "shard's store against its own journal")
    replay.add_argument("--minutes", type=float, default=10.0)
    replay.add_argument("--drain", type=float, default=120.0,
                        help="quiet seconds appended before verifying")
    replay.add_argument("--verify", action="store_true",
                        help="exit 1 on any live-vs-replayed "
                             "fingerprint divergence")
    replay.add_argument("--backfill", type=int, default=None, metavar="N",
                        help="also re-publish the retained ingest "
                             "history in bounded batches of N (backfill "
                             "demo)")
    replay.set_defaults(handler=_replay)

    slo = subparsers.add_parser(
        "slo", help="run a durable, SLO-managed scenario under a fault "
                    "plan and print the burn-rate/alert report")
    slo.add_argument("--plan", choices=sorted(NAMED_PLANS),
                     default="slo-burn")
    slo.add_argument("--seed", type=int, default=7)
    slo.add_argument("--users", type=int, default=3)
    slo.add_argument("--shards", type=int, default=None,
                     help="deploy a sharded cluster (enables the "
                          "work-skew SLO)")
    slo.add_argument("--minutes", type=float, default=10.0)
    slo.add_argument("--drain", type=float, default=120.0,
                     help="quiet seconds appended before the report")
    slo.add_argument("--jsonl", metavar="PATH",
                     help="write the alert transition log as JSONL")
    slo.add_argument("--prom", metavar="PATH",
                     help="write alert states in Prometheus format")
    slo.set_defaults(handler=_slo)

    obs = subparsers.add_parser(
        "obs", help="run a traced scenario and print the obs report")
    obs.add_argument("--scenario", choices=["paris"], default="paris")
    obs.add_argument("--seed", type=int, default=2)
    obs.add_argument("--ticks", type=float, default=900.0,
                     help="simulated seconds to run")
    obs.add_argument("--drain", type=float, default=60.0,
                     help="quiet seconds appended before the report")
    obs.add_argument("--jsonl", metavar="PATH",
                     help="write the span/event log as JSONL")
    obs.add_argument("--prom", metavar="PATH",
                     help="write a Prometheus-style metrics dump")
    obs.set_defaults(handler=_obs)

    cluster = subparsers.add_parser(
        "cluster", help="run a sharded server cluster, optionally "
                        "crashing, scaling or rolling-upgrading shards "
                        "mid-run")
    cluster.add_argument("--shards", type=int, default=4)
    cluster.add_argument("--seed", type=int, default=11)
    cluster.add_argument("--users", type=int, default=8)
    cluster.add_argument("--minutes", type=float, default=10.0)
    cluster.add_argument("--drain", type=float, default=120.0,
                         help="quiet seconds appended before the report")
    cluster.add_argument("--durability", action="store_true",
                         help="per-shard write-ahead journals (required "
                              "for zero acknowledged-record loss across "
                              "a shard crash)")
    cluster.add_argument("--crash-shard", type=int, default=None,
                         metavar="N", help="crash shard N at 40%% of the "
                                           "run")
    cluster.add_argument("--rebalance-after", type=float, default=60.0,
                         help="seconds between the crash and the ring "
                              "rebalance")
    cluster.add_argument("--add-shard-at", type=float, default=None,
                         metavar="T", help="scale out by one shard at "
                                           "T seconds into the run")
    cluster.add_argument("--add-strategy", choices=["snapshot", "replay"],
                         default="snapshot",
                         help="bootstrap path for the joining shard's "
                              "migrated documents")
    cluster.add_argument("--remove-shard", type=int, default=None,
                         metavar="N", help="drain and retire shard N")
    cluster.add_argument("--remove-shard-at", type=float, default=300.0,
                         metavar="T", help="when the scale-in fires")
    cluster.add_argument("--rolling-upgrade-at", type=float, default=None,
                         metavar="T", help="drain+restart+rejoin every "
                                           "shard in sequence from T")
    cluster.add_argument("--upgrade-stagger", type=float, default=60.0,
                         help="seconds between per-shard upgrade steps "
                              "(0 = all at one instant)")
    cluster.set_defaults(handler=_cluster)

    perf = subparsers.add_parser(
        "perf", help="run the hot-path microbenchmarks and record the "
                     "perf trajectory")
    perf.add_argument("--quick", action="store_true",
                      help="smaller sizes (CI smoke)")
    perf.add_argument("--output", default="BENCH_PERF.json",
                      help="trajectory file to append to")
    perf.add_argument("--no-write", action="store_true",
                      help="print the summary without touching the "
                           "trajectory file")
    perf.add_argument("--scenario", default=None,
                      help="run a named population scenario instead of "
                           "the classic suite (city-day, flash-crowd, "
                           "viral-cascade, dtn-partition)")
    perf.add_argument("--devices", type=int, default=10_000,
                      help="population size for --scenario runs")
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument("--substrate", choices=("streaming", "eager"),
                      default="streaming",
                      help="device residency model for --scenario runs")
    perf.add_argument("--scheduler", choices=("heap", "wheel"),
                      default="wheel",
                      help="event-queue backing the scenario world")
    perf.add_argument("--sim-seconds", type=float, default=None,
                      help="override the scenario's horizon (compressed "
                           "CI runs)")
    perf.add_argument("--events-per-device", type=float, default=None,
                      help="override the scenario's mean sense events "
                           "per device")
    perf.add_argument("--active-cap", type=int, default=4096,
                      help="max resident devices (streaming substrate)")
    perf.set_defaults(handler=_perf)

    experiments = subparsers.add_parser(
        "experiments", help="list the paper experiments and their benches")
    experiments.set_defaults(handler=_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
