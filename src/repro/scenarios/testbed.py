"""The SenSocial testbed: a fully wired simulation world.

Builds everything a deployment needs — network, MQTT broker, server
middleware, OSN platforms with plug-ins, and per-user phones running
the mobile middleware — so examples, tests and benchmarks only say
*what* they deploy, not *how* to wire it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify import ClassifierRegistry
from repro.core.mobile.manager import MobileSenSocialManager
from repro.core.server.manager import ServerSenSocialManager
from repro.device import calibration
from repro.device.environment import EnvironmentRegistry
from repro.device.mobility import CityMobility, CityRegistry
from repro.device.phone import Smartphone
from repro.mqtt.broker import MqttBroker
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.obs import Observability
from repro.osn.generator import ActionWorkloadGenerator
from repro.osn.service import OsnService
from repro.plugins.facebook import FacebookPlugin
from repro.plugins.twitter import TwitterPlugin
from repro.simkit.world import World


@dataclass
class MobileNode:
    """One deployed user: phone + mobile middleware + mobility."""

    user_id: str
    phone: Smartphone
    manager: MobileSenSocialManager
    mobility: CityMobility


class SenSocialTestbed:
    """A complete SenSocial deployment in one object."""

    def __init__(self, seed: int = 0, *,
                 facebook_delay: LatencyModel | None = None,
                 location_update_period_s: float | None = 300.0,
                 observability: bool = False,
                 durability=False, shards: int | None = None,
                 slo=False, batching=False, scheduler: str = "heap"):
        MobileSenSocialManager.reset_instances()
        #: Batched record transport: ``False``/``None`` = per-record
        #: sends; ``True`` = batches of up to 64; an int = that batch
        #: cap.  Threaded to every deployed mobile manager.
        if batching is True:
            self.batch_max = 64
        elif batching:
            self.batch_max = int(batching)
        else:
            self.batch_max = None
        #: ``scheduler`` selects the event-queue backing the world's
        #: clock — ``"heap"`` or ``"wheel"`` (see
        #: :func:`repro.simkit.world.build_event_queue`).  Firing order
        #: is bit-identical either way.
        self.world = World(seed=seed, scheduler=scheduler)
        #: The SLO control plane needs the tracer's terminal stream.
        observability = observability or bool(slo)
        #: ``None`` deploys the classic monolithic server; an integer
        #: deploys a :class:`repro.cluster.ClusterCoordinator` over
        #: that many shard workers (``shards=1`` is bit-identical to
        #: the monolith — pinned by ``tests/test_cluster.py``).
        self.shards = shards
        #: Observability hub, or ``None`` when tracing is off.  Installed
        #: before any component is built so every constructor-time
        #: ``Observability.of`` / ``component_or_none("obs")`` sees it.
        self.obs = Observability.install(self.world) if observability else None
        self.network = Network(
            self.world,
            default_latency=UniformLatency(
                calibration.WIFI_LATENCY_MEAN_S - calibration.WIFI_LATENCY_JITTER_S,
                calibration.WIFI_LATENCY_MEAN_S + calibration.WIFI_LATENCY_JITTER_S))
        self.environments = EnvironmentRegistry()
        self.cities = CityRegistry.europe()
        self.classifiers = ClassifierRegistry(self.cities)
        self.broker = MqttBroker(self.world, self.network)
        #: Server durability controller (write-ahead journal + overload
        #: protection), or ``None`` — pass ``durability=True`` for the
        #: defaults or a :class:`repro.durability.DurabilityConfig`.
        #: On a cluster every shard gets its own controller (see
        #: ``durabilities``); this attribute then points at shard 0's.
        self.durability = None
        #: Per-shard durability controllers (cluster deployments only).
        self.durabilities = None
        durability_config = None
        if durability:
            from repro.durability import DurabilityConfig, ServerDurability
            durability_config = (
                durability if isinstance(durability, DurabilityConfig)
                else None)
            if shards is None:
                self.durability = ServerDurability(self.world,
                                                   durability_config)
            else:
                self.durabilities = [
                    ServerDurability(self.world, durability_config)
                    for _ in range(shards)]
                self.durability = self.durabilities[0]
        if shards is None:
            self.server = ServerSenSocialManager(self.world, self.network,
                                                 durability=self.durability)
        else:
            from repro.cluster import ClusterCoordinator
            durability_factory = None
            if durability:
                def durability_factory():
                    # Shards joining via add_shard() get their own
                    # controller, tracked alongside the initial ones.
                    controller = ServerDurability(self.world,
                                                  durability_config)
                    self.durabilities.append(controller)
                    return controller
            self.server = ClusterCoordinator(
                self.world, self.network, shards=shards,
                durability=self.durabilities,
                durability_factory=durability_factory)
        self.server.start()
        # Let the server's broker session settle before devices deploy:
        # a registration published before the server's subscription
        # lands would be dropped (deployments start the server first).
        self.world.run_for(1.0)

        #: SLO control plane, or ``None`` — pass ``slo=True`` for the
        #: stock objectives or a
        #: :class:`repro.obs.SloControlPlaneConfig` to tune them.
        self.slo = None
        if slo:
            from repro.obs import SloControlPlane, SloControlPlaneConfig
            slo_config = slo if isinstance(slo, SloControlPlaneConfig) \
                else None
            self.slo = SloControlPlane(
                self.world, self.server, config=slo_config,
                durabilities=self.durabilities).start()

        self.facebook = OsnService(self.world, "facebook")
        self.twitter = OsnService(self.world, "twitter")
        self.facebook_plugin = FacebookPlugin(
            self.world, self.facebook, notify_delay=facebook_delay)
        self.twitter_plugin = TwitterPlugin(self.world, self.twitter)
        self.server.attach_plugin(self.facebook_plugin)
        self.server.attach_plugin(self.twitter_plugin)
        self.facebook_plugin.start()
        self.twitter_plugin.start()

        self.workload = ActionWorkloadGenerator(self.world, self.facebook)
        self.nodes: dict[str, MobileNode] = {}
        self._location_update_period_s = location_update_period_s

        # A couple of access points per city so WiFi scans see something.
        for name in self.cities.names():
            city = self.cities.get(name)
            self.environments.add_access_point(f"ap-{name.lower()}-1", city.center)
            self.environments.add_access_point(
                f"ap-{name.lower()}-2", [city.lon + 0.001, city.lat + 0.001])

    # -- deployment -------------------------------------------------------

    def add_user(self, user_id: str, home_city: str = "Paris",
                 platforms: tuple[str, ...] = ("facebook",)) -> MobileNode:
        """Deploy a user: OSN accounts, phone, middleware, mobility."""
        phone = Smartphone(self.world, self.network, self.environments, user_id)
        mobility = CityMobility(self.world, phone.environment,
                                self.environments, self.cities,
                                home_city).start()
        manager = MobileSenSocialManager.get_sensocial_manager(
            self.world, phone, self.network, classifiers=self.classifiers,
            batch_max=self.batch_max)
        manager.start(location_update_period_s=self._location_update_period_s)
        if self.slo is not None:
            # Only SLO-managed deployments listen for rate pushes, so
            # plain runs exchange exactly the same MQTT packets.
            manager.mqtt.enable_rate_control()
        if "facebook" in platforms:
            self.facebook.register_user(user_id)
            self.facebook_plugin.register_user(user_id)
        if "twitter" in platforms:
            self.twitter.register_user(user_id)
            self.twitter_plugin.register_user(user_id)
        node = MobileNode(user_id=user_id, phone=phone, manager=manager,
                          mobility=mobility)
        self.nodes[user_id] = node
        # Let the registration round-trip settle.
        self.world.run_for(1.0)
        return node

    def befriend(self, a: str, b: str, platform: str = "facebook") -> None:
        """Create a friendship on the platform and mirror it server-side."""
        service = self.facebook if platform == "facebook" else self.twitter
        service.graph.add_friendship(a, b)
        self.server.database.add_friend(a, b)

    def node(self, user_id: str) -> MobileNode:
        return self.nodes[user_id]

    def run(self, seconds: float) -> None:
        """Advance the whole deployment by ``seconds``."""
        self.world.run_for(seconds)
