"""The Figure 2 scenario: geo-aware social notifications.

Five users — A and B in Paris; C, D and E in Bordeaux — with OSN links
A–C and A–D.  User C later travels to Paris; the server notices one of
A's friends entering A's home town and notifies A.
"""

from __future__ import annotations

from repro.scenarios.testbed import SenSocialTestbed

FIGURE2_USERS = {
    "A": "Paris",
    "B": "Paris",
    "C": "Bordeaux",
    "D": "Bordeaux",
    "E": "Bordeaux",
}

FIGURE2_FRIENDSHIPS = [("A", "C"), ("A", "D")]


def build_paris_scenario(seed: int = 0,
                         location_update_period_s: float = 120.0,
                         observability: bool = False,
                         shards: int | None = None) -> SenSocialTestbed:
    """Deploy the five Figure 2 users and their OSN links."""
    testbed = SenSocialTestbed(
        seed=seed, location_update_period_s=location_update_period_s,
        observability=observability, shards=shards)
    for user_id, city in FIGURE2_USERS.items():
        testbed.add_user(user_id, home_city=city)
    for a, b in FIGURE2_FRIENDSHIPS:
        testbed.befriend(a, b)
    return testbed
