"""The scenario engine: runs a named scenario over a streaming population.

One engine = one world + one :class:`Population` + one record sink.
Two substrates execute the *same* event program:

``streaming`` (the default)
    Devices are materialized lazily when their arrival fires, kept in
    a bounded LRU of :class:`ActiveDevice` flyweights, and hibernated
    back into the columnar store when the resident set exceeds
    ``active_cap`` — resident state is O(cap), not O(population).
``eager``
    Every device object is materialized up front and never hibernated
    — the old-world memory shape, kept as the identity baseline.

Both substrates issue the *identical sequence of scheduler calls*
(one arrival pump admitting devices in index order; every device event
draws only from that device's own counter RNG), so event ``seq``
assignment — and therefore firing order, even on exact-time ties — is
bit-identical.  Hibernation round-trips device state exactly (doubles
and 64-bit ints through typed arrays), so a 50-device eager run and a
50-device streaming run with a tiny ``active_cap`` produce the same
docstore fingerprint, the same delivery order and the same terminal
accounting — ``tests/test_population.py`` pins this.

The engine's accounting invariant, checked by :meth:`verify`::

    emitted == delivered + buffered_residual + dropped
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from hashlib import blake2b

from repro.scenarios.library import ScenarioSpec
from repro.scenarios.population import (
    ActiveDevice,
    DeviceRng,
    HibernationStore,
    Population,
    hash64,
    hash_unit,
)
from repro.simkit.errors import SimulationError
from repro.simkit.world import World

#: How far a device may drift from its initial position, degrees.
MAX_ROAM_DEG = 0.05
#: Per-event random-walk step, degrees.
STEP_DEG = 0.004
#: Extra virtual time after the horizon for in-flight deliveries.
DRAIN_S = 60.0


class StatsSink:
    """Counting sink: rolling blake2b over delivered record ids.

    The 100k-scale sink — O(1) memory, yet the digest still pins the
    exact delivery order for cross-run comparisons.
    """

    kind = "stats"

    def __init__(self):
        self.delivered = 0
        self._digest = blake2b(digest_size=16)

    def deliver(self, record_id: str, user_id: str, timestamp: float,
                modality: str, value: dict) -> None:
        self.delivered += 1
        self._digest.update(record_id.encode("utf-8"))

    def fingerprint(self) -> str:
        return self._digest.copy().hexdigest()

    def report(self) -> dict:
        return {"sink": self.kind, "sink_delivered": self.delivered,
                "delivery_fingerprint": self.fingerprint()}


class ServerSink:
    """Full-fidelity sink: records ride the simulated network into a
    real :class:`ServerSenSocialManager` (ingest, dedup, docstore).

    Used by the identity tests: the docstore fingerprint and the
    server-side delivery order are the strongest available witnesses
    that two runs were bit-identical.
    """

    kind = "server"
    GATEWAY = "population-gateway"

    def __init__(self, world: World):
        from repro.core.server.manager import ServerSenSocialManager
        from repro.net.network import Network

        self.network = Network(world)
        self.server = ServerSenSocialManager(world, self.network)
        self.delivered = 0
        self.acks = 0
        self.delivery_order: list[str] = []
        self.network.register(self.GATEWAY, self._on_message)
        self.server.register_listener(
            lambda record: self.delivery_order.append(
                record.details.get("record_id", "")))

    def _on_message(self, message) -> None:
        if message.headers.get("protocol") == "stream-ack":
            self.acks += 1

    def deliver(self, record_id: str, user_id: str, timestamp: float,
                modality: str, value: dict) -> None:
        self.delivered += 1
        self.network.send(
            self.GATEWAY, self.server.address,
            {"stream_id": f"scn-{user_id}", "user_id": user_id,
             "device_id": f"dev-{user_id}", "modality": modality,
             "granularity": "classified", "timestamp": timestamp,
             "value": value, "details": {"record_id": record_id},
             "osn_action": None, "record_id": record_id},
            headers={"protocol": "stream-data"})

    def fingerprint(self) -> str:
        digest = blake2b(digest_size=16)
        for record_id in self.delivery_order:
            digest.update(record_id.encode("utf-8"))
        return digest.hexdigest()

    def docstore_fingerprint(self) -> str:
        from repro.durability.codec import fingerprint_store
        return fingerprint_store(self.server.database.store)

    def report(self) -> dict:
        return {"sink": self.kind, "sink_delivered": self.delivered,
                "acks": self.acks,
                "server_received": self.server.records_received,
                "delivery_fingerprint": self.fingerprint(),
                "docstore_fingerprint": self.docstore_fingerprint()}


class ScenarioEngine:
    """Execute one :class:`ScenarioSpec` over a device population."""

    def __init__(self, spec: ScenarioSpec, devices: int, *, seed: int = 0,
                 substrate: str = "streaming", scheduler: str = "heap",
                 sink: str = "stats", sim_seconds: float | None = None,
                 events_per_device: float | None = None,
                 active_cap: int = 4096, chaos: bool = False):
        if substrate not in ("streaming", "eager"):
            raise SimulationError(
                f"unknown substrate {substrate!r}; expected 'streaming' "
                f"or 'eager'")
        if active_cap < 1:
            raise SimulationError(
                f"active cap must be >= 1, got {active_cap}")
        if chaos and spec.chaos is None:
            raise SimulationError(
                f"scenario {spec.name!r} has no chaos episode")
        self.spec = spec
        self.substrate = substrate
        self.scheduler_kind = scheduler
        self.seed = seed
        self.chaos = chaos
        self.horizon = float(sim_seconds or spec.horizon_s)
        self.events_per_device = float(
            events_per_device or spec.events_per_device)
        self.active_cap = active_cap
        self.world = World(seed=seed, scheduler=scheduler)
        self.population = Population(devices, seed)
        self.store = HibernationStore()
        self._active: "OrderedDict[int, ActiveDevice]" = OrderedDict()
        self._admitted = 0
        self.peak_active = 0
        self.delivered = 0
        self.flushes = 0
        self.cascade_actions = 0
        self.cascade_skipped = 0
        self._infected: bytearray | None = None
        self._cascade_rng = DeviceRng(hash64(seed, 0xCA5C))
        if sink == "stats":
            self.sink: StatsSink | ServerSink = StatsSink()
        elif sink == "server":
            self.sink = ServerSink(self.world)
        else:
            raise SimulationError(
                f"unknown sink {sink!r}; expected 'stats' or 'server'")
        self._mean_gap = self.horizon / self.events_per_device
        if substrate == "eager":
            # The old-world shape: every device resident from t=0.  The
            # arrival pump still fires identically — it just finds the
            # object already alive instead of admitting it.
            for index in range(devices):
                state = self.population.initial_state(index)
                self.store.append_initial(*state)
                self._active[index] = ActiveDevice(index, *state)
        self._started = False

    # -- residency -----------------------------------------------------

    def _touch(self, index: int) -> ActiveDevice:
        """The resident device for ``index`` — rehydrating on a miss."""
        device = self._active.get(index)
        if device is not None:
            self._active.move_to_end(index)
            return device
        device = self.store.rehydrate(index)
        self._active[index] = device
        return device

    def _settle(self, current: int) -> None:
        """Enforce the residency cap after an event (streaming only)."""
        if self.substrate == "eager":
            return
        while len(self._active) > self.active_cap:
            index, device = self._active.popitem(last=False)
            if index == current:
                # Never evict the device that just fired; re-admit it
                # as most-recent and keep sweeping.
                self._active[index] = device
                self._active.move_to_end(index)
                if len(self._active) <= 1:
                    break
                continue
            self.store.hibernate(device)
        if len(self._active) > self.peak_active:
            self.peak_active = len(self._active)

    # -- the arrival pump ----------------------------------------------

    def start(self) -> "ScenarioEngine":
        if self._started:
            return self
        self._started = True
        self.world.scheduler.schedule_at(
            self.spec.arrival_time(0, self.population.size, self.horizon),
            self._pump, 0)
        if self.spec.cascade is not None:
            self.world.scheduler.schedule_at(
                self.horizon * self.spec.cascade.at_frac, self._cascade_seed)
        return self

    def _pump(self, index: int) -> None:
        """Admit device ``index`` and fire its first event — then chain
        to the next arrival.  One pump event per device, in index
        order: the single place the two substrates could diverge in
        scheduler-call order, so they share it exactly."""
        if self.substrate == "streaming":
            self.store.append_initial(*self.population.initial_state(index))
        self._admitted += 1
        self._device_event(index)
        nxt = index + 1
        if nxt < self.population.size:
            self.world.scheduler.schedule_at(
                self.spec.arrival_time(nxt, self.population.size,
                                       self.horizon),
                self._pump, nxt)

    # -- per-device dynamics -------------------------------------------

    def _in_burst(self, index: int, now: float) -> bool:
        burst = self.spec.burst
        if burst is None:
            return False
        phase = now / self.horizon
        if not (burst.start_frac <= phase < burst.end_frac):
            return False
        return hash_unit(self.seed, 0xF1A5, index) \
            < burst.participant_fraction

    def _chaos_partitioned(self, index: int, now: float) -> bool:
        episode = self.spec.chaos
        if not self.chaos or episode is None:
            return False
        phase = now / self.horizon
        if not (episode.start_frac <= phase < episode.end_frac):
            return False
        return hash_unit(self.seed, 0xC4A0, index) < episode.fraction

    def _connectivity_step(self, device: ActiveDevice, now: float) -> bool:
        """Advance the device's link state; returns True on reconnect
        (the caller then flushes the carry buffer)."""
        spec = self.spec.connectivity
        came_online = False
        if spec is not None:
            # One draw per event regardless of state keeps the per-device
            # RNG sequence a function of event count alone.
            draw = device.rng.random()
            if device.online:
                if draw < spec.offline_probability:
                    device.online = False
            elif draw < spec.reconnect_probability:
                device.online = True
                came_online = True
        if self._chaos_partitioned(device.index, now):
            if came_online:
                came_online = False
            device.online = False
        elif self.chaos and not device.online and spec is not None \
                and self.spec.chaos is not None \
                and now / self.horizon >= self.spec.chaos.end_frac:
            # The partition window is over: partitioned devices rejoin
            # at their first event past the window.
            device.online = True
            came_online = True
        return came_online

    def _emit(self, device: ActiveDevice, now: float, modality: str,
              value: dict) -> None:
        record_id = f"r{device.index}-{device.emitted}"
        device.emitted += 1
        if device.online:
            self.delivered += 1
            self.sink.deliver(record_id, self.population.user_id(device.index),
                              now, modality, value)
        else:
            device.buffered += 1
            cap = self.spec.connectivity.buffer_cap \
                if self.spec.connectivity is not None else 0
            if cap and device.buffered > cap:
                # Store-carry-forward with a bounded buffer: the oldest
                # record falls off; ids stay contiguous because the
                # buffer is always [emitted - buffered, emitted).
                device.buffered = cap
                device.dropped += 1

    def _flush(self, device: ActiveDevice, now: float) -> None:
        """Deliver the carried buffer in emission order."""
        if device.buffered == 0:
            return
        user_id = self.population.user_id(device.index)
        for seq in range(device.emitted - device.buffered, device.emitted):
            self.delivered += 1
            self.sink.deliver(f"r{device.index}-{seq}", user_id, now,
                              "location", {"carried": True})
        device.buffered = 0
        self.flushes += 1

    def _device_event(self, index: int) -> None:
        now = self.world.now
        device = self._touch(index)
        # Mobility: a bounded random walk around the home position.
        bearing = device.rng.uniform(0.0, 2.0 * math.pi)
        step = device.rng.random() * STEP_DEG
        lon = device.lon + step * math.cos(bearing)
        lat = device.lat + step * math.sin(bearing)
        home = self.population.home_city(index)
        if abs(lon - home.lon) < MAX_ROAM_DEG:
            device.lon = lon
        if abs(lat - home.lat) < MAX_ROAM_DEG:
            device.lat = lat
        device.record_position()
        came_online = self._connectivity_step(device, now)
        if came_online:
            self._flush(device, now)
        self._emit(device, now, "location",
                   {"lon": device.lon, "lat": device.lat})
        # Next occurrence: exponential gap shaped by the rate profile
        # and any burst the device participates in.
        rate = self.spec.rate(now / self.horizon)
        if self._in_burst(index, now):
            rate *= self.spec.burst.rate_multiplier
        gap = device.rng.expovariate(self._mean_gap / rate)
        nxt = now + gap
        if nxt <= self.horizon:
            self.world.scheduler.schedule_at(nxt, self._device_event, index)
        self._settle(index)

    # -- the reshare cascade -------------------------------------------

    def _cascade_seed(self) -> None:
        cascade = self.spec.cascade
        size = self.population.size
        self._infected = bytearray(size)
        now = self.world.now
        planted = 0
        attempt = 0
        while planted < self.spec.seeds(size) and attempt < size:
            index = hash64(self.seed, 0x5EED, attempt) % size
            attempt += 1
            if self._infected[index]:
                continue
            self._infected[index] = 1
            planted += 1
            delay = self._cascade_rng.uniform(0.0, cascade.min_delay_s)
            self.world.scheduler.schedule_at(
                now + delay, self._cascade_post, index, cascade.max_depth)

    def _cascade_post(self, index: int, depth: int) -> None:
        if index >= self._admitted:
            # The reshare reached a device that has not arrived yet —
            # count it rather than conjuring state out of order.
            self.cascade_skipped += 1
            return
        now = self.world.now
        device = self._touch(index)
        self.cascade_actions += 1
        self._emit(device, now, "facebook_activity",
                   {"action": "reshare", "depth": depth})
        cascade = self.spec.cascade
        if depth > 0:
            for friend in self.population.friends(index):
                if self._cascade_rng.random() < cascade.reshare_probability \
                        and not self._infected[friend]:
                    self._infected[friend] = 1
                    nxt = now + self._cascade_rng.uniform(
                        cascade.min_delay_s, cascade.max_delay_s)
                    if nxt <= self.horizon:
                        self.world.scheduler.schedule_at(
                            nxt, self._cascade_post, friend, depth - 1)
        self._settle(index)

    # -- run & report --------------------------------------------------

    def run(self) -> dict:
        """Run the scenario to its horizon and return the report."""
        self.start()
        wall_start = time.perf_counter()
        self.world.run_until(self.horizon + DRAIN_S)
        wall = time.perf_counter() - wall_start
        return self.report(wall_s=wall)

    def _sync_accounting(self) -> None:
        """Write every resident device's scalars back to the columns so
        the columnar totals cover the whole population."""
        for device in self._active.values():
            self.store.writeback(device)

    def report(self, wall_s: float | None = None) -> dict:
        self._sync_accounting()
        if len(self._active) > self.peak_active:
            self.peak_active = len(self._active)
        events = self.world.scheduler.events_processed
        report = {
            "scenario": self.spec.name,
            "substrate": self.substrate,
            "scheduler": self.scheduler_kind,
            "devices": self.population.size,
            "horizon_s": self.horizon,
            "chaos": self.chaos,
            "events": events,
            "activated": self._admitted,
            "emitted": self.store.emitted_total(),
            "delivered": self.delivered,
            "buffered_residual": self.store.buffered_total(),
            "dropped": self.store.dropped_total(),
            "flushes": self.flushes,
            "cascade_actions": self.cascade_actions,
            "cascade_skipped": self.cascade_skipped,
            "peak_active": self.peak_active,
            "active_cap": self.active_cap,
            "hibernations": self.store.hibernations,
            "rehydrations": self.store.rehydrations,
            "store_bytes": self.store.nbytes(),
            "store_bytes_per_device": self.store.nbytes()
            / max(1, len(self.store)),
        }
        report.update(self.sink.report())
        if wall_s is not None:
            report["wall_s"] = wall_s
            report["events_per_wall_s"] = events / wall_s if wall_s else 0.0
        return report

    def verify(self) -> list[str]:
        """Accounting invariants; an empty list means all hold."""
        self._sync_accounting()
        problems = []
        emitted = self.store.emitted_total()
        buffered = self.store.buffered_total()
        dropped = self.store.dropped_total()
        if emitted != self.delivered + buffered + dropped:
            problems.append(
                f"record accounting broken: emitted {emitted} != "
                f"delivered {self.delivered} + buffered {buffered} + "
                f"dropped {dropped}")
        if self._admitted != self.population.size:
            problems.append(
                f"arrival pump incomplete: admitted {self._admitted} of "
                f"{self.population.size}")
        if self.delivered != self.sink.delivered:
            problems.append(
                f"sink saw {self.sink.delivered} deliveries, engine "
                f"counted {self.delivered}")
        if self.substrate == "streaming" \
                and len(self._active) > self.active_cap:
            problems.append(
                f"residency cap violated: {len(self._active)} active > "
                f"cap {self.active_cap}")
        return problems


def run_scenario(name: str, devices: int, **kwargs) -> dict:
    """Build, run and verify a named scenario; returns its report.

    The report gains a ``verify_problems`` list — empty on a clean run.
    """
    from repro.scenarios.library import get_scenario

    engine = ScenarioEngine(get_scenario(name), devices, **kwargs)
    report = engine.run()
    report["verify_problems"] = engine.verify()
    return report
