"""Canned simulation worlds used by examples, tests and benchmarks."""

from repro.scenarios.testbed import MobileNode, SenSocialTestbed
from repro.scenarios.paris import build_paris_scenario

__all__ = ["MobileNode", "SenSocialTestbed", "build_paris_scenario"]
