"""Canned simulation worlds used by examples, tests and benchmarks.

Two families live here:

* The *testbed* (:class:`SenSocialTestbed`, :func:`build_paris_scenario`)
  — small, fully materialized worlds with real phones, sensors and OSN
  plumbing, used by the paper-figure reproductions.
* The *population substrate* (:class:`Population`,
  :class:`ScenarioEngine`, :data:`SCENARIOS`) — streaming 100k-device
  scenarios where devices are generated lazily from seeds and
  hibernated to a columnar store between events.
"""

from repro.scenarios.testbed import MobileNode, SenSocialTestbed
from repro.scenarios.paris import build_paris_scenario
from repro.scenarios.population import (
    ActiveDevice,
    DeviceRng,
    HibernationStore,
    Population,
)
from repro.scenarios.library import SCENARIOS, ScenarioSpec, get_scenario
from repro.scenarios.engine import (
    ScenarioEngine,
    ServerSink,
    StatsSink,
    run_scenario,
)

__all__ = [
    "ActiveDevice",
    "DeviceRng",
    "HibernationStore",
    "MobileNode",
    "Population",
    "SCENARIOS",
    "ScenarioEngine",
    "ScenarioSpec",
    "SenSocialTestbed",
    "ServerSink",
    "StatsSink",
    "build_paris_scenario",
    "get_scenario",
    "run_scenario",
]
