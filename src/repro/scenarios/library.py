"""Named population-scale scenarios.

Each scenario is a declarative :class:`ScenarioSpec` — arrival curve,
sensing-rate profile and optional burst / cascade / connectivity
dynamics — executed by :class:`repro.scenarios.engine.ScenarioEngine`
over a streaming :class:`repro.scenarios.population.Population`.  The
library ships four:

``city-day``
    A compressed urban day: staggered morning arrivals and a diurnal
    sensing-rate curve (quiet at the edges of the horizon, peak in the
    middle).  The scale workhorse — this is what the 100k-device CI
    smoke runs.
``flash-crowd``
    Uniform background load, then a stadium-size fraction of the
    population multiplies its sensing rate inside a narrow window.
    Carries a partition episode for chaos runs: half the crowd loses
    connectivity mid-burst and must buffer-and-flush.
``viral-cascade``
    An OSN action resharing cascade over the streamed social graph —
    the paper's Table 4 measured the middleware under bursts of tens
    of OSN actions; seeded across a 100k population the cascade
    replays that burst at three orders of magnitude more actions.
``dtn-partition``
    Store-carry-forward: devices stochastically lose connectivity,
    keep sensing into a bounded local buffer (oldest records dropped
    on overflow), and flush in order on reconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simkit.errors import SimulationError


@dataclass(frozen=True)
class BurstSpec:
    """A rate burst over a window of the horizon."""

    start_frac: float
    end_frac: float
    participant_fraction: float
    rate_multiplier: float


@dataclass(frozen=True)
class CascadeSpec:
    """A reshare cascade seeded over the social graph."""

    at_frac: float            #: when (fraction of horizon) seeds post
    seed_fraction: float      #: fraction of the population seeded
    min_seeds: int            #: floor so tiny runs still cascade
    reshare_probability: float
    max_depth: int
    min_delay_s: float        #: reshare latency window
    max_delay_s: float


@dataclass(frozen=True)
class ConnectivitySpec:
    """Stochastic DTN connectivity: offline episodes with buffering."""

    offline_probability: float   #: P(go offline) per event while online
    reconnect_probability: float  #: P(reconnect) per event while offline
    buffer_cap: int              #: max buffered records per device


@dataclass(frozen=True)
class ChaosSpec:
    """A forced partition window (``repro chaos`` runs only)."""

    start_frac: float
    end_frac: float
    fraction: float   #: fraction of the population partitioned


def _flat(phase: float) -> float:
    return 1.0


def _diurnal(phase: float) -> float:
    """Quiet at the horizon edges (night), peaking mid-horizon."""
    return 0.3 + 1.4 * math.sin(math.pi * min(1.0, max(0.0, phase))) ** 2


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative population scenario."""

    name: str
    description: str
    horizon_s: float
    #: Mean sense events per device across the horizon at rate 1.0.
    events_per_device: float
    #: Arrivals are spread over the first ``arrival_fraction`` of the
    #: horizon; ``arrival_exponent`` < 1 front-loads them.
    arrival_fraction: float = 0.5
    arrival_exponent: float = 1.0
    rate_profile: str = "flat"   #: "flat" or "diurnal"
    burst: BurstSpec | None = None
    cascade: CascadeSpec | None = None
    connectivity: ConnectivitySpec | None = None
    chaos: ChaosSpec | None = None

    def arrival_time(self, index: int, size: int, horizon: float) -> float:
        """Activation instant of device ``index`` — monotone in index,
        so device index *is* arrival rank (the property the columnar
        hibernation store indexes by)."""
        quantile = (index + 0.5) / size
        return horizon * self.arrival_fraction \
            * quantile ** self.arrival_exponent

    def rate(self, phase: float) -> float:
        profile = _diurnal if self.rate_profile == "diurnal" else _flat
        return profile(phase)

    def seeds(self, size: int) -> int:
        if self.cascade is None:
            return 0
        return max(self.cascade.min_seeds,
                   int(size * self.cascade.seed_fraction))


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec(
            name="city-day",
            description="Compressed urban day: staggered arrivals, "
                        "diurnal sensing curve.",
            horizon_s=86_400.0,
            events_per_device=6.0,
            arrival_fraction=0.5,
            arrival_exponent=0.7,
            rate_profile="diurnal",
        ),
        ScenarioSpec(
            name="flash-crowd",
            description="A crowd fraction multiplies its sensing rate "
                        "in a narrow window; chaos variant partitions "
                        "half the crowd mid-burst.",
            horizon_s=3_600.0,
            events_per_device=4.0,
            arrival_fraction=0.25,
            burst=BurstSpec(start_frac=0.4, end_frac=0.6,
                            participant_fraction=0.3,
                            rate_multiplier=12.0),
            chaos=ChaosSpec(start_frac=0.45, end_frac=0.55, fraction=0.5),
            connectivity=ConnectivitySpec(
                offline_probability=0.0, reconnect_probability=1.0,
                buffer_cap=256),
        ),
        ScenarioSpec(
            name="viral-cascade",
            description="Reshare cascade over the streamed social "
                        "graph — Table 4's OSN action burst scaled "
                        "~x1000.",
            horizon_s=7_200.0,
            events_per_device=2.0,
            arrival_fraction=0.3,
            cascade=CascadeSpec(at_frac=0.35, seed_fraction=0.002,
                                min_seeds=3, reshare_probability=0.45,
                                max_depth=12, min_delay_s=2.0,
                                max_delay_s=45.0),
        ),
        ScenarioSpec(
            name="dtn-partition",
            description="Store-carry-forward: stochastic offline "
                        "episodes, bounded buffers, in-order flush "
                        "on reconnect.",
            horizon_s=14_400.0,
            events_per_device=6.0,
            arrival_fraction=0.4,
            connectivity=ConnectivitySpec(
                offline_probability=0.18, reconnect_probability=0.3,
                buffer_cap=64),
        ),
    )
}


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise SimulationError(
            f"unknown scenario {name!r}; available: {known}") from None
