"""Streaming device population: 100k devices without 100k objects.

`SenSocialTestbed` materializes every phone, mobility model and OSN
graph edge up front — fine at 8 users, a wall at 100k.  This module is
the population-scale substrate underneath the scenario library
(:mod:`repro.scenarios.library`):

* :class:`Population` — a *generator*, not a container.  Every
  device's initial state, home city, mobility and social edges derive
  from ``(seed, index)`` through a counter-based splitmix64 hash, so
  device #73942 can be conjured (or re-conjured) in O(1) without ever
  enumerating the other 99 999 devices.  The social graph is streamed
  the same way: ``friends(i)`` is computed from the community layout,
  never stored.
* :class:`DeviceRng` — a 8-byte counter PRNG per device.  A
  ``random.Random`` instance costs ~2.5 KB of Mersenne state; hibernating
  one per device would dwarf the device itself.  Splitmix64 state is a
  single machine word and round-trips losslessly through the columnar
  store, which is what makes eager and streaming substrates
  bit-identical.
* :class:`HibernationStore` — struct-of-arrays cold storage.  A
  hibernated device is seven scalars in parallel ``array`` columns
  (~57 bytes); rehydration rebuilds the :class:`ActiveDevice` flyweight
  from those scalars plus derived data (friends, city) that is
  recomputed, never persisted.
"""

from __future__ import annotations

import math
from array import array

from repro.device.mobility import City, CityRegistry
from repro.simkit.errors import SimulationError

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(state: int) -> tuple[int, int]:
    """One splitmix64 step: ``(next_state, output)``."""
    state = (state + _GOLDEN) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


def hash64(*parts: int) -> int:
    """Stateless deterministic mix of integer parts (graph edges, home
    cities, burst membership — anything derivable without history)."""
    state = 0x5851F42D4C957F2D
    for part in parts:
        state, _ = splitmix64((state ^ (part & _MASK64)) & _MASK64)
    _, out = splitmix64(state)
    return out


def hash_unit(*parts: int) -> float:
    """``hash64`` mapped to [0, 1)."""
    return hash64(*parts) / 2.0 ** 64


class DeviceRng:
    """Per-device counter PRNG: one 64-bit word of state."""

    __slots__ = ("state",)

    def __init__(self, state: int):
        self.state = state & _MASK64

    def u64(self) -> int:
        self.state, out = splitmix64(self.state)
        return out

    def random(self) -> float:
        return self.u64() / 2.0 ** 64

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()

    def expovariate(self, mean: float) -> float:
        # 1 - random() is in (0, 1]: log never sees zero.
        return -mean * math.log(1.0 - self.random())

    def randrange(self, n: int) -> int:
        return self.u64() % n


class ActiveDevice:
    """The resident (hot) form of one device.

    Everything needed to continue the simulation is scalar and
    round-trips through :class:`HibernationStore` exactly; ``trace``
    (the recent mobility trail) and ``friends`` are resident-only
    derived state, dropped on hibernation and rebuilt on demand.
    """

    __slots__ = ("index", "rng", "lon", "lat", "online", "emitted",
                 "buffered", "dropped", "trace", "_friends")

    TRACE_KEEP = 4

    def __init__(self, index: int, rng_state: int, lon: float, lat: float,
                 online: bool = True, emitted: int = 0, buffered: int = 0,
                 dropped: int = 0):
        self.index = index
        self.rng = DeviceRng(rng_state)
        self.lon = lon
        self.lat = lat
        self.online = online
        self.emitted = emitted
        self.buffered = buffered
        self.dropped = dropped
        #: Recent positions — the streaming "mobility trace": only the
        #: resident window exists; history is never materialized.
        self.trace: list[tuple[float, float]] = []
        self._friends: tuple[int, ...] | None = None

    def record_position(self) -> None:
        self.trace.append((self.lon, self.lat))
        if len(self.trace) > self.TRACE_KEEP:
            del self.trace[0]

    def friends(self, population: "Population") -> tuple[int, ...]:
        if self._friends is None:
            self._friends = population.friends(self.index)
        return self._friends


class HibernationStore:
    """Columnar (struct-of-arrays) cold storage for hibernated devices.

    Devices activate in index order (arrival rank == index), so the
    columns are plain appendable arrays addressed by device index — no
    per-device dict entry, no per-device object header.  Seven scalars
    per device: splitmix state, position, online flag, and the three
    record counters.
    """

    __slots__ = ("_rng", "_lon", "_lat", "_online", "_emitted",
                 "_buffered", "_dropped", "hibernations", "rehydrations")

    def __init__(self):
        self._rng = array("Q")
        self._lon = array("d")
        self._lat = array("d")
        self._online = array("b")
        self._emitted = array("q")
        self._buffered = array("q")
        self._dropped = array("q")
        self.hibernations = 0
        self.rehydrations = 0

    def __len__(self) -> int:
        return len(self._rng)

    def append_initial(self, rng_state: int, lon: float, lat: float) -> int:
        """Admit the next device (index == current length)."""
        index = len(self._rng)
        self._rng.append(rng_state)
        self._lon.append(lon)
        self._lat.append(lat)
        self._online.append(1)
        self._emitted.append(0)
        self._buffered.append(0)
        self._dropped.append(0)
        return index

    def writeback(self, device: ActiveDevice) -> None:
        """Write the device's scalars back into the columns (used both
        by hibernation and by the engine's end-of-run accounting sync,
        which must not count as a hibernation)."""
        index = device.index
        self._rng[index] = device.rng.state
        self._lon[index] = device.lon
        self._lat[index] = device.lat
        self._online[index] = 1 if device.online else 0
        self._emitted[index] = device.emitted
        self._buffered[index] = device.buffered
        self._dropped[index] = device.dropped

    def hibernate(self, device: ActiveDevice) -> None:
        self.writeback(device)
        self.hibernations += 1

    def rehydrate(self, index: int) -> ActiveDevice:
        self.rehydrations += 1
        return ActiveDevice(
            index, self._rng[index], self._lon[index], self._lat[index],
            online=bool(self._online[index]), emitted=self._emitted[index],
            buffered=self._buffered[index], dropped=self._dropped[index])

    def emitted_total(self) -> int:
        return sum(self._emitted)

    def buffered_total(self) -> int:
        return sum(self._buffered)

    def dropped_total(self) -> int:
        return sum(self._dropped)

    def nbytes(self) -> int:
        """Exact bytes held by the columns (the cold-device footprint)."""
        return sum(len(column) * column.itemsize for column in (
            self._rng, self._lon, self._lat, self._online,
            self._emitted, self._buffered, self._dropped))


class Population:
    """Seeded lazy generator of devices, mobility and OSN edges.

    The social graph is a community layout: devices partition into
    communities of ``community_size``; inside a community every pair is
    a candidate edge admitted by a stateless hash draw, a ring edge
    keeps each community connected, and one hash-chosen bridge couples
    each community to the next — so ``friends(i)`` is O(community)
    arithmetic from both endpoints, with no adjacency ever stored.
    """

    #: Spread of initial positions around the home-city center, deg.
    HOME_JITTER_DEG = 0.02

    def __init__(self, size: int, seed: int = 0, *,
                 cities: CityRegistry | None = None,
                 community_size: int = 16, edge_probability: float = 0.25):
        if size <= 0:
            raise SimulationError(f"population size must be > 0, got {size}")
        if community_size < 2:
            raise SimulationError(
                f"community size must be >= 2, got {community_size}")
        self.size = size
        self.seed = seed
        self.cities = cities if cities is not None \
            else CityRegistry.shared_europe()
        self._city_names = self.cities.names()
        self.community_size = community_size
        self.edge_probability = edge_probability

    # -- devices -------------------------------------------------------

    def home_city(self, index: int) -> City:
        name = self._city_names[
            hash64(self.seed, 0xC171, index) % len(self._city_names)]
        return self.cities.get(name)

    def initial_state(self, index: int) -> tuple[int, float, float]:
        """``(rng_state, lon, lat)`` for a device about to activate."""
        city = self.home_city(index)
        lon = city.lon + (hash_unit(self.seed, 0x10A7, index) - 0.5) \
            * self.HOME_JITTER_DEG
        lat = city.lat + (hash_unit(self.seed, 0x1A70, index) - 0.5) \
            * self.HOME_JITTER_DEG
        return hash64(self.seed, 0xD1CE, index), lon, lat

    def user_id(self, index: int) -> str:
        return f"p{index:06d}"

    # -- the streaming social graph ------------------------------------

    def _community_bounds(self, index: int) -> tuple[int, int]:
        start = (index // self.community_size) * self.community_size
        return start, min(start + self.community_size, self.size)

    def _edge(self, a: int, b: int) -> bool:
        """Intra-community edge draw — symmetric by construction."""
        low, high = (a, b) if a < b else (b, a)
        return hash_unit(self.seed, 0xED6E, low, high) < self.edge_probability

    def friends(self, index: int) -> tuple[int, ...]:
        """Neighbours of ``index``, sorted — computed, never stored."""
        start, end = self._community_bounds(index)
        members = end - start
        linked: set[int] = set()
        # Ring edge keeps every community connected.
        if members > 1:
            linked.add(start + (index - start + 1) % members)
            linked.add(start + (index - start - 1) % members)
        for other in range(start, end):
            if other != index and self._edge(index, other):
                linked.add(other)
        # One bridge per community couples it to the next (both
        # endpoints hash-chosen, so either side can derive the edge).
        communities = (self.size + self.community_size - 1) \
            // self.community_size
        if communities > 1:
            community = index // self.community_size
            for c in (community - 1, community):
                src_c, dst_c = c % communities, (c + 1) % communities
                src = self._bridge_member(src_c, 0xB41D)
                dst = self._bridge_member(dst_c, 0xB42D)
                if src == index and dst != index:
                    linked.add(dst)
                elif dst == index and src != index:
                    linked.add(src)
        linked.discard(index)
        return tuple(sorted(linked))

    def _bridge_member(self, community: int, salt: int) -> int:
        start = community * self.community_size
        members = min(self.community_size, self.size - start)
        return start + hash64(self.seed, salt, community) % members


def shared_europe() -> CityRegistry:
    """Alias for :meth:`CityRegistry.shared_europe` (import symmetry)."""
    return CityRegistry.shared_europe()
