"""Simulated network substrate.

Models message delivery between named endpoints with configurable
latency distributions, link loss, and per-byte accounting hooks that
the device radio model uses to charge transmission energy (including
the post-transmission radio energy tail the paper cites from
Cool-Tether [40]).

Fault injection is first-class: per-link/per-endpoint probabilistic
loss, latency jitter, scheduled partition windows and flap schedules,
each with drop counters — see :class:`Network` and docs/FAULTS.md.
"""

from repro.net.errors import (
    DuplicateEndpointError,
    NetworkError,
    UnknownEndpointError,
)
from repro.net.latency import (
    FixedLatency,
    GaussianLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.message import Message, estimate_size
from repro.net.network import Endpoint, Network

__all__ = [
    "DuplicateEndpointError",
    "Endpoint",
    "FixedLatency",
    "GaussianLatency",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkError",
    "UniformLatency",
    "UnknownEndpointError",
    "estimate_size",
]
