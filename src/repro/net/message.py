"""Network messages and payload size estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def estimate_size(payload: Any) -> int:
    """Approximate the wire size of a payload, in bytes.

    The simulation does not serialise payloads for real; it charges
    radio energy proportionally to this estimate, which mimics a JSON
    encoding: strings and numbers cost their textual length, containers
    add per-element framing overhead.
    """
    if payload is None:
        return 4
    if isinstance(payload, bool):
        return 5
    if isinstance(payload, (int, float)):
        return len(repr(payload))
    if isinstance(payload, str):
        return len(payload.encode("utf-8")) + 2
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return 2 + sum(estimate_size(k) + estimate_size(v) + 2
                       for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 2 + sum(estimate_size(item) + 1 for item in payload)
    return len(repr(payload))


@dataclass
class Message:
    """One message in flight between two endpoints."""

    src: str
    dst: str
    payload: Any
    size: int
    sent_at: float
    headers: dict[str, Any] = field(default_factory=dict)
    delivered_at: float | None = None

    @property
    def latency(self) -> float | None:
        """One-way delay, available once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at
