"""Latency distributions for simulated links."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """One-way message delay distribution, in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw a delay for one message."""

    def mean(self) -> float:
        """Expected delay; used by capacity planning helpers and tests."""
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """A constant delay — the default for deterministic tests."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"latency must be >= 0, got {delay}")
        self.delay = float(delay)

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """A delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class GaussianLatency(LatencyModel):
    """A normally distributed delay, truncated below at ``floor``.

    Used for the Facebook notification delay of Table 3, where the
    paper reports a mean and standard deviation over 50 actions.
    """

    def __init__(self, mu: float, sigma: float, floor: float = 0.0):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.floor = float(floor)

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mu, self.sigma))

    def mean(self) -> float:
        # Exact only when truncation is negligible, which holds for
        # every distribution used in the reproduction (mu >> sigma).
        return self.mu

    def __repr__(self) -> str:
        return f"GaussianLatency({self.mu}, {self.sigma}, floor={self.floor})"
