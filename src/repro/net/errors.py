"""Network substrate errors."""


class NetworkError(Exception):
    """Base class for network simulation errors."""


class UnknownEndpointError(NetworkError):
    """Raised when sending to or from an address that is not registered."""


class DuplicateEndpointError(NetworkError):
    """Raised when registering an address that is already taken.

    Carries the contested ``address`` so observability surfaces can
    report *which* endpoint collided, not just that one did.
    """

    def __init__(self, message: str, address: str | None = None):
        super().__init__(message)
        self.address = address
