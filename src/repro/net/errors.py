"""Network substrate errors."""


class NetworkError(Exception):
    """Base class for network simulation errors."""


class UnknownEndpointError(NetworkError):
    """Raised when sending to or from an address that is not registered."""


class DuplicateEndpointError(NetworkError):
    """Raised when registering an address that is already taken."""
