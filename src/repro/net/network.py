"""The network: endpoint registry and message delivery.

Endpoints register under unique string addresses.  ``send`` schedules
delivery on the world scheduler after a latency draw; the receiving
endpoint's ``deliver`` runs at the delivery instant.  Endpoints may
expose a ``radio`` attribute (see :mod:`repro.device.radio`) whose
``account_tx`` / ``account_rx`` hooks are charged per message — this is
how transmission energy reaches the battery model.

Fault models live here too: probabilistic per-link packet loss,
latency jitter, and partition windows / flap schedules driven by the
world scheduler.  Every drop is counted (globally and per endpoint) so
resilience tests can assert on exactly what the network ate.  All
randomness comes from the dedicated ``net-faults`` RNG stream, so a run
with no faults configured draws nothing from it and is bit-identical
to a run on a network without the fault machinery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.net.errors import DuplicateEndpointError, UnknownEndpointError
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Message, estimate_size
from repro.simkit.world import World


class Endpoint(ABC):
    """Anything that can receive network messages."""

    #: Optional radio energy accounting hook; devices set this.
    radio = None

    @abstractmethod
    def deliver(self, message: Message) -> None:
        """Handle an incoming message (called at the delivery instant)."""


class _CallbackEndpoint(Endpoint):
    """Adapter turning a plain callable into an endpoint."""

    def __init__(self, fn: Callable[[Message], None]):
        self._fn = fn

    def deliver(self, message: Message) -> None:
        self._fn(message)


class Network:
    """Message fabric connecting every simulated host."""

    DEFAULT_LATENCY = FixedLatency(0.05)

    def __init__(self, world: World, default_latency: LatencyModel | None = None):
        self._world = world
        self._rng = world.rng("network")
        self._fault_rng = world.rng("net-faults")
        self._endpoints: dict[str, Endpoint] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._endpoint_latency: dict[str, LatencyModel] = {}
        self.default_latency = default_latency or self.DEFAULT_LATENCY
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_delivered = 0
        #: Messages eaten by any fault: partitions + probabilistic loss.
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Messages dropped because an endpoint was partitioned.
        self.partition_drops = 0
        #: Messages dropped by a probabilistic loss draw.
        self.loss_drops = 0
        self._drops_by_endpoint: dict[str, int] = {}
        #: address -> (reason, simulated time) of the latest drop
        #: charged against it — the taxonomy detail ObsReport and the
        #: managers' health() both read, so they cannot disagree.
        self._last_drop: dict[str, tuple[str, float]] = {}
        #: Observability hub, when one is installed on this world.
        self._obs = world.component_or_none("obs")
        self._down: set[str] = set()
        self._last_delivery: dict[tuple[str, str], float] = {}
        self.default_loss = 0.0
        self._link_loss: dict[tuple[str, str], float] = {}
        self._endpoint_loss: dict[str, float] = {}
        self._link_jitter: dict[tuple[str, str], LatencyModel] = {}
        self._endpoint_jitter: dict[str, LatencyModel] = {}

    # -- topology -----------------------------------------------------

    def register(self, address: str, endpoint: Endpoint | Callable[[Message], None]) -> str:
        """Attach an endpoint under ``address``; returns the address."""
        if address in self._endpoints:
            raise DuplicateEndpointError(
                f"address {address!r} already registered", address=address)
        if not isinstance(endpoint, Endpoint):
            endpoint = _CallbackEndpoint(endpoint)
        self._endpoints[address] = endpoint
        return address

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._endpoint_latency.pop(address, None)
        self._down.discard(address)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    def set_link_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override latency for the directed link ``src -> dst``."""
        self._link_latency[(src, dst)] = model

    def set_endpoint_latency(self, address: str, model: LatencyModel) -> None:
        """Override latency for every message *to* ``address``."""
        self._endpoint_latency[address] = model

    # -- fault models -------------------------------------------------

    def set_down(self, address: str, down: bool = True) -> None:
        """Partition an endpoint: messages to or from it are dropped.

        Used by failure injection; mirrors a phone losing connectivity,
        which the MQTT QoS-1 retry path must survive.  Every message a
        partition eats is counted in :attr:`partition_drops` and
        against the partitioned address (:meth:`drop_count`).
        """
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def schedule_partition(self, address: str, start: float,
                           duration: float) -> None:
        """Partition ``address`` during ``[start, start + duration)``.

        Times are absolute simulated instants; scheduling in the past
        raises, same as any scheduler use.
        """
        scheduler = self._world.scheduler
        scheduler.schedule_at(start, self.set_down, address, True)
        scheduler.schedule_at(start + duration, self.set_down, address, False)

    def schedule_flaps(self, address: str, start: float, cycles: int,
                       down_for: float, up_for: float) -> None:
        """Flap ``address``: ``cycles`` windows of down/up starting at
        ``start``.  Models a walk through patchy coverage."""
        at = start
        for _ in range(cycles):
            self.schedule_partition(address, at, down_for)
            at += down_for + up_for

    def set_default_loss(self, rate: float) -> None:
        """Probability that any message is silently lost in transit."""
        self.default_loss = self._check_rate(rate)

    def set_link_loss(self, src: str, dst: str, rate: float) -> None:
        """Loss probability for the directed link ``src -> dst``."""
        self._link_loss[(src, dst)] = self._check_rate(rate)

    def set_endpoint_loss(self, address: str, rate: float) -> None:
        """Loss probability for every message to *or from* ``address``
        (a flaky radio eats traffic in both directions)."""
        self._endpoint_loss[address] = self._check_rate(rate)

    def set_link_jitter(self, src: str, dst: str,
                        model: LatencyModel | None) -> None:
        """Extra random delay added on the link ``src -> dst``."""
        if model is None:
            self._link_jitter.pop((src, dst), None)
        else:
            self._link_jitter[(src, dst)] = model

    def set_endpoint_jitter(self, address: str,
                            model: LatencyModel | None) -> None:
        """Extra random delay added to every message *to* ``address``."""
        if model is None:
            self._endpoint_jitter.pop(address, None)
        else:
            self._endpoint_jitter[address] = model

    def drop_count(self, address: str) -> int:
        """Messages dropped charged against ``address`` (partitioned
        endpoint, or destination of a lossy link draw)."""
        return self._drops_by_endpoint.get(address, 0)

    def drop_counts(self) -> dict[str, int]:
        """Per-endpoint drop counters, for fault reports."""
        return dict(self._drops_by_endpoint)

    def last_drop(self, address: str) -> dict[str, object] | None:
        """Latest drop charged against ``address``: reason + instant."""
        entry = self._last_drop.get(address)
        if entry is None:
            return None
        return {"reason": entry[0], "at": entry[1]}

    def drop_details(self) -> dict[str, dict[str, object]]:
        """Per-endpoint drop taxonomy: count, last reason, last time."""
        details: dict[str, dict[str, object]] = {}
        for address, count in self._drops_by_endpoint.items():
            reason, at = self._last_drop[address]
            details[address] = {"count": count, "last_reason": reason,
                                "last_at": at}
        return details

    # -- data path ----------------------------------------------------

    def send(self, src: str, dst: str, payload, *,
             size: int | None = None, headers: dict | None = None,
             coalesced: int = 1) -> Message:
        """Send ``payload`` from ``src`` to ``dst``; returns the message.

        Delivery is scheduled for ``now + latency``.  The sender's radio
        is charged immediately (transmission happens now); the
        receiver's radio is charged at delivery.

        ``coalesced`` declares how many logical messages this one
        physical message replaces (batch envelopes).  The link then
        draws loss/latency/jitter once *per logical message*, in the
        same interleaved order N singleton sends would have, and
        delivers at the FIFO-clamped arrival of the last one — so a
        batched run consumes the RNG streams identically to the
        per-record run it replaces and every later draw stays aligned.
        If any logical message draws a loss, the whole envelope is
        dropped (one TCP segment; QoS layers retransmit the members),
        and — matching a singleton send, which returns before its
        latency draw — the remaining draws are not consumed: under
        probabilistic loss batching guarantees exactly-once, not
        bit-identity.
        """
        if dst not in self._endpoints:
            raise UnknownEndpointError(f"unknown destination {dst!r}")
        message = Message(
            src=src,
            dst=dst,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            sent_at=self._world.now,
            headers=dict(headers or {}),
        )
        self.messages_sent += 1
        self.bytes_sent += message.size

        sender = self._endpoints.get(src)
        if sender is not None and sender.radio is not None:
            sender.radio.account_tx(message.size)

        if dst in self._down or src in self._down:
            self._account_drop(message, dst if dst in self._down else src,
                               partition=True)
            return message  # dropped by the partition; QoS layers retry

        loss = self._loss_for(src, dst)
        latency_model = self._latency_for(src, dst)
        jitter = self._jitter_for(src, dst)
        latency = 0.0
        for _ in range(coalesced):
            if loss > 0.0 and self._fault_rng.random() < loss:
                self._account_drop(message, dst, partition=False)
                return message  # lost in transit; QoS layers retry
            sample = latency_model.sample(self._rng)
            if jitter is not None:
                sample += jitter.sample(self._fault_rng)
            # FIFO within the envelope: the slowest member gates it, the
            # same arrival the per-link clamp below would give the Nth
            # of N singleton sends.
            latency = max(latency, sample)
        # Per-link FIFO: messages between the same pair ride one TCP
        # connection and never overtake each other.
        delivery_at = max(self._world.now + latency,
                          self._last_delivery.get((src, dst), 0.0))
        self._last_delivery[(src, dst)] = delivery_at
        self._world.scheduler.schedule_at(delivery_at, self._deliver, message)
        return message

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        model = self._link_latency.get((src, dst))
        if model is not None:
            return model
        model = self._endpoint_latency.get(dst)
        if model is not None:
            return model
        return self.default_latency

    def _loss_for(self, src: str, dst: str) -> float:
        rate = self._link_loss.get((src, dst))
        if rate is not None:
            return rate
        endpoint = max(self._endpoint_loss.get(dst, 0.0),
                       self._endpoint_loss.get(src, 0.0))
        if endpoint > 0.0:
            return endpoint
        return self.default_loss

    def _jitter_for(self, src: str, dst: str) -> LatencyModel | None:
        model = self._link_jitter.get((src, dst))
        if model is not None:
            return model
        return self._endpoint_jitter.get(dst)

    def _deliver(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None or message.dst in self._down:
            # Endpoint vanished or went down while the message was in
            # flight; account it like any other partition drop.
            self._account_drop(message, message.dst, partition=True)
            return
        message.delivered_at = self._world.now
        self.messages_delivered += 1
        if endpoint.radio is not None:
            endpoint.radio.account_rx(message.size)
        endpoint.deliver(message)

    def _account_drop(self, message: Message, address: str,
                      partition: bool) -> None:
        self.messages_dropped += 1
        self.bytes_dropped += message.size
        reason = "partition" if partition else "loss"
        if partition:
            self.partition_drops += 1
        else:
            self.loss_drops += 1
        self._drops_by_endpoint[address] = \
            self._drops_by_endpoint.get(address, 0) + 1
        self._last_drop[address] = (reason, self._world.now)
        if self._obs is not None:
            self._obs.telemetry.counter(
                "net_messages_dropped", reason=reason,
                endpoint=address).inc()

    @staticmethod
    def _check_rate(rate: float) -> float:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        return float(rate)
