"""The network: endpoint registry and message delivery.

Endpoints register under unique string addresses.  ``send`` schedules
delivery on the world scheduler after a latency draw; the receiving
endpoint's ``deliver`` runs at the delivery instant.  Endpoints may
expose a ``radio`` attribute (see :mod:`repro.device.radio`) whose
``account_tx`` / ``account_rx`` hooks are charged per message — this is
how transmission energy reaches the battery model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.net.errors import UnknownEndpointError
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Message, estimate_size
from repro.simkit.world import World


class Endpoint(ABC):
    """Anything that can receive network messages."""

    #: Optional radio energy accounting hook; devices set this.
    radio = None

    @abstractmethod
    def deliver(self, message: Message) -> None:
        """Handle an incoming message (called at the delivery instant)."""


class _CallbackEndpoint(Endpoint):
    """Adapter turning a plain callable into an endpoint."""

    def __init__(self, fn: Callable[[Message], None]):
        self._fn = fn

    def deliver(self, message: Message) -> None:
        self._fn(message)


class Network:
    """Message fabric connecting every simulated host."""

    DEFAULT_LATENCY = FixedLatency(0.05)

    def __init__(self, world: World, default_latency: LatencyModel | None = None):
        self._world = world
        self._rng = world.rng("network")
        self._endpoints: dict[str, Endpoint] = {}
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._endpoint_latency: dict[str, LatencyModel] = {}
        self.default_latency = default_latency or self.DEFAULT_LATENCY
        self.messages_sent = 0
        self.bytes_sent = 0
        self._down: set[str] = set()
        self._last_delivery: dict[tuple[str, str], float] = {}

    # -- topology -----------------------------------------------------

    def register(self, address: str, endpoint: Endpoint | Callable[[Message], None]) -> str:
        """Attach an endpoint under ``address``; returns the address."""
        if address in self._endpoints:
            raise UnknownEndpointError(f"address {address!r} already registered")
        if not isinstance(endpoint, Endpoint):
            endpoint = _CallbackEndpoint(endpoint)
        self._endpoints[address] = endpoint
        return address

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)
        self._endpoint_latency.pop(address, None)
        self._down.discard(address)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    def set_link_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override latency for the directed link ``src -> dst``."""
        self._link_latency[(src, dst)] = model

    def set_endpoint_latency(self, address: str, model: LatencyModel) -> None:
        """Override latency for every message *to* ``address``."""
        self._endpoint_latency[address] = model

    def set_down(self, address: str, down: bool = True) -> None:
        """Partition an endpoint: messages to it are silently dropped.

        Used by failure-injection tests; mirrors a phone losing
        connectivity, which the MQTT QoS-1 retry path must survive.
        """
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    # -- data path ----------------------------------------------------

    def send(self, src: str, dst: str, payload, *,
             size: int | None = None, headers: dict | None = None) -> Message:
        """Send ``payload`` from ``src`` to ``dst``; returns the message.

        Delivery is scheduled for ``now + latency``.  The sender's radio
        is charged immediately (transmission happens now); the
        receiver's radio is charged at delivery.
        """
        if dst not in self._endpoints:
            raise UnknownEndpointError(f"unknown destination {dst!r}")
        message = Message(
            src=src,
            dst=dst,
            payload=payload,
            size=size if size is not None else estimate_size(payload),
            sent_at=self._world.now,
            headers=dict(headers or {}),
        )
        self.messages_sent += 1
        self.bytes_sent += message.size

        sender = self._endpoints.get(src)
        if sender is not None and sender.radio is not None:
            sender.radio.account_tx(message.size)

        if dst in self._down or src in self._down:
            return message  # dropped by the partition; QoS layers retry

        latency = self._latency_for(src, dst).sample(self._rng)
        # Per-link FIFO: messages between the same pair ride one TCP
        # connection and never overtake each other.
        delivery_at = max(self._world.now + latency,
                          self._last_delivery.get((src, dst), 0.0))
        self._last_delivery[(src, dst)] = delivery_at
        self._world.scheduler.schedule_at(delivery_at, self._deliver, message)
        return message

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        model = self._link_latency.get((src, dst))
        if model is not None:
            return model
        model = self._endpoint_latency.get(dst)
        if model is not None:
            return model
        return self.default_latency

    def _deliver(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None or message.dst in self._down:
            return  # endpoint vanished or went down while in flight
        message.delivered_at = self._world.now
        if endpoint.radio is not None:
            endpoint.radio.account_rx(message.size)
        endpoint.deliver(message)
