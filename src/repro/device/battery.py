"""Battery model with per-component, per-category energy ledger.

Mirrors what PowerTutor gives the paper's authors: attribution of
charge drain to the tasks a library performs — sampling,
classification, transmission (§5.3, Figure 4).
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum

from repro.device.calibration import BATTERY_CAPACITY_MAH
from repro.device.errors import DeviceError


class EnergyCategory(str, Enum):
    """The key tasks whose energy the paper identifies separately."""

    SAMPLING = "sampling"
    CLASSIFICATION = "classification"
    TRANSMISSION = "transmission"
    RECEPTION = "reception"
    IDLE = "idle"


class Battery:
    """Charge store plus a drain ledger keyed by (component, category)."""

    __slots__ = ("capacity_mah", "consumed_mah", "_ledger")

    def __init__(self, capacity_mah: float = BATTERY_CAPACITY_MAH):
        if capacity_mah <= 0:
            raise DeviceError(f"battery capacity must be > 0, got {capacity_mah}")
        self.capacity_mah = capacity_mah
        self.consumed_mah = 0.0
        self._ledger: dict[tuple[str, EnergyCategory], float] = defaultdict(float)

    @property
    def remaining_mah(self) -> float:
        return max(0.0, self.capacity_mah - self.consumed_mah)

    @property
    def level(self) -> float:
        """State of charge in [0, 1]."""
        return self.remaining_mah / self.capacity_mah

    def drain(self, amount_mah: float, component: str,
              category: EnergyCategory) -> None:
        """Charge ``amount_mah`` to ``component``/``category``."""
        if amount_mah < 0:
            raise DeviceError(f"cannot drain a negative amount: {amount_mah}")
        self.consumed_mah += amount_mah
        self._ledger[(component, category)] += amount_mah

    def consumed_by(self, component: str | None = None,
                    category: EnergyCategory | None = None) -> float:
        """Total drain filtered by component and/or category, in mAh."""
        total = 0.0
        for (ledger_component, ledger_category), amount in self._ledger.items():
            if component is not None and ledger_component != component:
                continue
            if category is not None and ledger_category != category:
                continue
            total += amount
        return total

    def breakdown(self) -> dict[tuple[str, EnergyCategory], float]:
        """A snapshot of the full ledger."""
        return dict(self._ledger)

    def snapshot(self) -> float:
        """Current total consumption; subtract two snapshots for a delta."""
        return self.consumed_mah
