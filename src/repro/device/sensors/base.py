"""Sensor base class and readings."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.device import calibration
from repro.device.battery import Battery, EnergyCategory
from repro.device.environment import UserEnvironment
from repro.simkit.world import World


@dataclass
class SensorReading:
    """One raw sampling cycle's output."""

    modality: str
    timestamp: float
    raw: Any
    wire_bytes: int = 0
    meta: dict[str, Any] = field(default_factory=dict)


class Sensor(ABC):
    """A physical sensor: samples the user's environment for energy."""

    __slots__ = ("_world", "_battery", "_environment", "_rng", "samples_taken")

    #: Subclasses set the modality name used across the middleware.
    modality: str = ""

    def __init__(self, world: World, battery: Battery,
                 environment: UserEnvironment):
        self._world = world
        self._battery = battery
        self._environment = environment
        self._rng = world.rng(f"sensor-{self.modality}-{environment.user_id}")
        self.samples_taken = 0

    @property
    def window_seconds(self) -> float:
        """How long one sampling cycle keeps the sensor on."""
        return calibration.SENSE_WINDOW_SECONDS[self.modality]

    def sample(self) -> SensorReading:
        """Run one sampling cycle: charge the battery, return raw data."""
        self._battery.drain(calibration.SAMPLING_MAH[self.modality],
                            self.modality, EnergyCategory.SAMPLING)
        self.samples_taken += 1
        return SensorReading(
            modality=self.modality,
            timestamp=self._world.now,
            raw=self._read(),
            wire_bytes=calibration.RAW_PAYLOAD_BYTES[self.modality],
        )

    @abstractmethod
    def _read(self) -> Any:
        """Produce this cycle's raw data from the environment."""
