"""Bluetooth: discovery scan returning co-located users' devices.

Collocation with other devices is one of the paper's headline
modalities; the geo-fenced multicast scenario of §3.2 ("sensor data
gathering from users who are collocated with a specific person") is
built on these scans.
"""

from __future__ import annotations

from repro.device.battery import Battery
from repro.device.environment import EnvironmentRegistry, UserEnvironment
from repro.device.sensors.base import Sensor
from repro.simkit.world import World


class BluetoothSensor(Sensor):
    __slots__ = ("_registry",)

    modality = "bluetooth"

    def __init__(self, world: World, battery: Battery,
                 environment: UserEnvironment, registry: EnvironmentRegistry):
        super().__init__(world, battery, environment)
        self._registry = registry

    def _read(self) -> list[str]:
        nearby = self._registry.nearby_users(self._environment.user_id)
        return [f"bt-{user_id}" for user_id in nearby]
