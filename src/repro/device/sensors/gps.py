"""GPS: the user's true position plus fix noise."""

from __future__ import annotations

from repro.device.sensors.base import Sensor

#: Horizontal fix noise, in degrees (~10 m).
_FIX_NOISE_DEG = 0.0001


class GpsSensor(Sensor):
    __slots__ = ()

    modality = "location"

    def _read(self) -> dict:
        lon, lat = self._environment.position
        return {
            "lon": lon + self._rng.gauss(0.0, _FIX_NOISE_DEG),
            "lat": lat + self._rng.gauss(0.0, _FIX_NOISE_DEG),
            "accuracy_m": abs(self._rng.gauss(8.0, 3.0)) + 2.0,
        }
