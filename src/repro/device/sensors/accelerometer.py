"""Accelerometer: 3-axis windows shaped by the user's true activity.

The real sensor samples every 20 ms for eight seconds (§5.3); the
simulation emits a decimated window (one triple per 200 ms) whose
statistics — gravity baseline, oscillation amplitude and frequency —
depend on whether the user is still, walking or running, so the
activity classifier has a real signal to work from.
"""

from __future__ import annotations

import math

from repro.device.environment import ActivityState
from repro.device.sensors.base import Sensor

GRAVITY = 9.81

#: (oscillation amplitude m/s^2, step frequency Hz, noise sigma).
_SIGNAL_SHAPE = {
    ActivityState.STILL: (0.05, 0.0, 0.03),
    ActivityState.WALKING: (1.8, 1.9, 0.25),
    ActivityState.RUNNING: (4.5, 2.9, 0.60),
}

#: Simulated samples per window (decimated from the real 50 Hz).
WINDOW_SAMPLES = 40


class AccelerometerSensor(Sensor):
    __slots__ = ()

    modality = "accelerometer"

    def _read(self) -> list[list[float]]:
        amplitude, frequency, noise = _SIGNAL_SHAPE[self._environment.activity]
        step = self.window_seconds / WINDOW_SAMPLES
        phase = self._rng.uniform(0, 2 * math.pi)
        window = []
        for index in range(WINDOW_SAMPLES):
            t = index * step
            vertical = amplitude * math.sin(2 * math.pi * frequency * t + phase)
            window.append([
                self._rng.gauss(0.0, noise),
                self._rng.gauss(0.0, noise) + 0.3 * vertical,
                GRAVITY + vertical + self._rng.gauss(0.0, noise),
            ])
        return window
