"""Microphone: RMS amplitude envelopes shaped by the audio scene."""

from __future__ import annotations

from repro.device.environment import AudioState
from repro.device.sensors.base import Sensor

#: (mean RMS amplitude, sigma) per audio scene, normalised to [0, 1].
_SCENE_LEVELS = {
    AudioState.SILENT: (0.02, 0.01),
    AudioState.NOISY: (0.32, 0.12),
}

#: Envelope points per sampling window.
WINDOW_SAMPLES = 20


class MicrophoneSensor(Sensor):
    __slots__ = ()

    modality = "microphone"

    def _read(self) -> list[float]:
        mean, sigma = _SCENE_LEVELS[self._environment.audio]
        return [min(1.0, max(0.0, self._rng.gauss(mean, sigma)))
                for _ in range(WINDOW_SAMPLES)]
