"""WiFi: the SSIDs visible from the user's position."""

from __future__ import annotations

from repro.device.battery import Battery
from repro.device.environment import EnvironmentRegistry, UserEnvironment
from repro.device.sensors.base import Sensor
from repro.simkit.world import World


class WifiSensor(Sensor):
    __slots__ = ("_registry",)

    modality = "wifi"

    def __init__(self, world: World, battery: Battery,
                 environment: UserEnvironment, registry: EnvironmentRegistry):
        super().__init__(world, battery, environment)
        self._registry = registry

    def _read(self) -> list[str]:
        return self._registry.visible_access_points(self._environment.position)
