"""The five sensor modalities SenSocial supports (§4): GPS,
accelerometer, microphone, WiFi and Bluetooth."""

from repro.device.sensors.base import Sensor, SensorReading
from repro.device.sensors.accelerometer import AccelerometerSensor
from repro.device.sensors.microphone import MicrophoneSensor
from repro.device.sensors.gps import GpsSensor
from repro.device.sensors.wifi import WifiSensor
from repro.device.sensors.bluetooth import BluetoothSensor

__all__ = [
    "AccelerometerSensor",
    "BluetoothSensor",
    "GpsSensor",
    "MicrophoneSensor",
    "Sensor",
    "SensorReading",
    "WifiSensor",
]
