"""Simulated smartphone substrate.

A :class:`Smartphone` bundles the hardware models the middleware's
micro-benchmarks observe — battery, CPU, heap, radio — together with
five sensors (accelerometer, microphone, GPS, WiFi, Bluetooth) whose
readings are driven by a per-user physical environment (position,
activity, audio scene) updated by mobility models.

All hardware constants live in :mod:`repro.device.calibration`, each
annotated with the paper measurement it reproduces.
"""

from repro.device.errors import DeviceError, SensorError
from repro.device.battery import Battery, EnergyCategory
from repro.device.cpu import CpuModel
from repro.device.memory import HeapModel
from repro.device.radio import Radio
from repro.device.environment import (
    ActivityState,
    AudioState,
    EnvironmentRegistry,
    UserEnvironment,
)
from repro.device.mobility import City, CityRegistry, CityMobility, RandomWaypoint
from repro.device.phone import Smartphone

__all__ = [
    "ActivityState",
    "AudioState",
    "Battery",
    "City",
    "CityMobility",
    "CityRegistry",
    "CpuModel",
    "DeviceError",
    "EnergyCategory",
    "EnvironmentRegistry",
    "HeapModel",
    "Radio",
    "RandomWaypoint",
    "SensorError",
    "Smartphone",
    "UserEnvironment",
]
