"""Ground-truth physical environment of every user.

Sensors don't invent data: they observe a per-user environment — the
user's position, physical activity and audio scene — maintained by the
mobility models.  The registry also answers proximity questions
(who is nearby, which WiFi access points are visible), which is what
the Bluetooth and WiFi sensors report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.docstore.geo import haversine_km
from repro.simkit.errors import SimulationError


class ActivityState(str, Enum):
    """Physical activity classes the paper's classifier emits (§4)."""

    STILL = "still"
    WALKING = "walking"
    RUNNING = "running"


class AudioState(str, Enum):
    """Audio environment classes the paper's classifier emits (§4)."""

    SILENT = "silent"
    NOISY = "not_silent"


@dataclass(slots=True)
class UserEnvironment:
    """The ground truth a single user's sensors observe."""

    user_id: str
    position: list[float] = field(default_factory=lambda: [0.0, 0.0])  # [lon, lat]
    activity: ActivityState = ActivityState.STILL
    audio: AudioState = AudioState.SILENT
    city_name: str | None = None

    def move_to(self, lon: float, lat: float) -> None:
        self.position = [float(lon), float(lat)]


class EnvironmentRegistry:
    """World-level registry of user environments and WiFi infrastructure."""

    #: Radius within which two phones "see" each other over Bluetooth.
    BLUETOOTH_RANGE_KM = 0.05
    #: Radius within which an access point is visible.
    WIFI_RANGE_KM = 0.15

    def __init__(self):
        self._environments: dict[str, UserEnvironment] = {}
        self._access_points: list[tuple[str, list[float]]] = []

    def register(self, environment: UserEnvironment) -> UserEnvironment:
        if environment.user_id in self._environments:
            raise SimulationError(
                f"environment for {environment.user_id!r} already registered")
        self._environments[environment.user_id] = environment
        return environment

    def get(self, user_id: str) -> UserEnvironment:
        try:
            return self._environments[user_id]
        except KeyError:
            raise SimulationError(f"no environment for user {user_id!r}") from None

    def has(self, user_id: str) -> bool:
        return user_id in self._environments

    def user_ids(self) -> list[str]:
        return sorted(self._environments)

    def nearby_users(self, user_id: str, radius_km: float | None = None) -> list[str]:
        """Other users within ``radius_km`` of ``user_id`` (Bluetooth range
        by default), sorted by distance."""
        if radius_km is None:
            radius_km = self.BLUETOOTH_RANGE_KM
        origin = self.get(user_id).position
        candidates = []
        for other_id, environment in self._environments.items():
            if other_id == user_id:
                continue
            distance = haversine_km(origin, environment.position)
            if distance <= radius_km:
                candidates.append((distance, other_id))
        return [other_id for _, other_id in sorted(candidates)]

    def add_access_point(self, ssid: str, position: list[float]) -> None:
        self._access_points.append((ssid, [float(position[0]), float(position[1])]))

    def visible_access_points(self, position: list[float]) -> list[str]:
        """SSIDs of access points within WiFi range of ``position``."""
        visible = []
        for ssid, ap_position in self._access_points:
            if haversine_km(position, ap_position) <= self.WIFI_RANGE_KM:
                visible.append(ssid)
        return sorted(visible)
