"""Radio energy model.

Transmissions pay a wake-up overhead plus a per-byte cost; bursts that
land while the radio is still in its post-transmission high-power tail
skip the overhead (the Cool-Tether effect [40] the paper's §5.3 cites
when averaging in "extra energy-tails").  Tiny control packets
(keep-alives, acks) ride signalling channels at a reduced wake cost.
"""

from __future__ import annotations

from repro.device import calibration
from repro.device.battery import Battery, EnergyCategory
from repro.simkit.world import World


class Radio:
    """Per-device radio; plugged into :class:`repro.net.Network` hooks."""

    __slots__ = ("_world", "_battery", "component", "_tail_until",
                 "bytes_tx", "bytes_rx", "bursts")

    def __init__(self, world: World, battery: Battery, component: str = "radio"):
        self._world = world
        self._battery = battery
        self.component = component
        self._tail_until = -1.0
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.bursts = 0

    def account_tx(self, size: int) -> None:
        """Charge one outgoing message of ``size`` bytes."""
        self.bytes_tx += size
        cost = size * calibration.RADIO_TX_PER_BYTE_MAH
        if size < calibration.RADIO_CONTROL_SIZE_BYTES:
            cost += calibration.RADIO_CONTROL_OVERHEAD_MAH
        elif self._world.now >= self._tail_until:
            cost += calibration.RADIO_TX_OVERHEAD_MAH
            self.bursts += 1
        if size >= calibration.RADIO_CONTROL_SIZE_BYTES:
            self._tail_until = self._world.now + calibration.RADIO_TAIL_SECONDS
        self._battery.drain(cost, self.component, EnergyCategory.TRANSMISSION)

    def account_rx(self, size: int) -> None:
        """Charge one incoming message of ``size`` bytes."""
        self.bytes_rx += size
        cost = size * calibration.RADIO_RX_PER_BYTE_MAH
        cost += calibration.RADIO_RX_OVERHEAD_MAH
        self._battery.drain(cost, self.component, EnergyCategory.RECEPTION)

    @property
    def in_tail(self) -> bool:
        """Is the radio currently in its high-power tail?"""
        return self._world.now < self._tail_until
