"""Mobility and activity ground-truth models.

The geo-aware scenarios (Figure 2: a friend travels from Bordeaux to
Paris) need users who live in cities, wander inside them, occasionally
travel, and switch between still / walking / running — because filters
like "sample GPS only when walking" observe those transitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.device.environment import (
    ActivityState,
    AudioState,
    EnvironmentRegistry,
    UserEnvironment,
)
from repro.docstore.geo import haversine_km
from repro.simkit.errors import SimulationError
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World


@dataclass(frozen=True)
class City:
    """A circular city footprint."""

    name: str
    lon: float
    lat: float
    radius_km: float = 8.0

    @property
    def center(self) -> list[float]:
        return [self.lon, self.lat]

    def contains(self, position: list[float]) -> bool:
        return haversine_km(position, self.center) <= self.radius_km


class CityRegistry:
    """Known cities; also the reverse geocoder for the location classifier."""

    __slots__ = ("_cities",)

    _shared_europe: "CityRegistry | None" = None

    def __init__(self):
        self._cities: dict[str, City] = {}

    def add(self, city: City) -> City:
        if city.name in self._cities:
            raise SimulationError(f"city {city.name!r} already registered")
        self._cities[city.name] = city
        return city

    def get(self, name: str) -> City:
        try:
            return self._cities[name]
        except KeyError:
            raise SimulationError(f"unknown city {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._cities)

    def city_of(self, position: list[float]) -> City | None:
        """The city containing ``position``; nearest wins on overlap."""
        best: City | None = None
        best_distance = math.inf
        for city in self._cities.values():
            distance = haversine_km(position, city.center)
            if distance <= city.radius_km and distance < best_distance:
                best = city
                best_distance = distance
        return best

    @classmethod
    def europe(cls) -> "CityRegistry":
        """The default map used by examples and benches."""
        registry = cls()
        registry.add(City("Paris", 2.3522, 48.8566))
        registry.add(City("Bordeaux", -0.5792, 44.8378))
        registry.add(City("London", -0.1276, 51.5072))
        registry.add(City("Birmingham", -1.8986, 52.4862))
        registry.add(City("Lyon", 4.8357, 45.7640))
        registry.add(City("Manchester", -2.2426, 53.4808))
        return registry

    @classmethod
    def shared_europe(cls) -> "CityRegistry":
        """A process-wide shared copy of :meth:`europe`.

        Population-scale scenarios hold one registry for 100k devices;
        sharing the immutable city table keeps it out of the per-device
        budget.  Treat the returned registry as read-only.
        """
        if cls._shared_europe is None:
            cls._shared_europe = cls.europe()
        return cls._shared_europe


#: Per-update activity transition probabilities (rows sum to 1).
ACTIVITY_TRANSITIONS: dict[ActivityState, list[tuple[ActivityState, float]]] = {
    ActivityState.STILL: [
        (ActivityState.STILL, 0.85),
        (ActivityState.WALKING, 0.12),
        (ActivityState.RUNNING, 0.03),
    ],
    ActivityState.WALKING: [
        (ActivityState.STILL, 0.30),
        (ActivityState.WALKING, 0.60),
        (ActivityState.RUNNING, 0.10),
    ],
    ActivityState.RUNNING: [
        (ActivityState.STILL, 0.20),
        (ActivityState.WALKING, 0.30),
        (ActivityState.RUNNING, 0.50),
    ],
}

#: Probability of a noisy audio scene given the current activity.
NOISY_GIVEN_ACTIVITY = {
    ActivityState.STILL: 0.25,
    ActivityState.WALKING: 0.65,
    ActivityState.RUNNING: 0.80,
}

#: Walking / running speeds, km per hour.
SPEED_KMH = {
    ActivityState.STILL: 0.0,
    ActivityState.WALKING: 4.5,
    ActivityState.RUNNING: 10.0,
}


def _offset_position(position: list[float], bearing_rad: float,
                     distance_km: float) -> list[float]:
    """Move ``distance_km`` from ``position`` along ``bearing_rad``.

    A local-tangent-plane approximation, plenty accurate at city scale.
    """
    dlat = (distance_km / 111.32) * math.cos(bearing_rad)
    dlon = (distance_km / (111.32 * max(0.2, math.cos(math.radians(position[1]))))
            ) * math.sin(bearing_rad)
    return [position[0] + dlon, position[1] + dlat]


class CityMobility:
    """A resident of a city: wanders inside it, may travel to another.

    Each update advances the activity Markov chain, resamples the audio
    scene, and moves the user according to their activity.  ``travel_to``
    interpolates the position towards another city over a duration —
    exactly the Figure 2 scenario.
    """

    __slots__ = ("_world", "_rng", "environment", "_cities", "city",
                 "_task", "_travel_target", "_travel_step_km")

    UPDATE_PERIOD_S = 30.0

    def __init__(self, world: World, environment: UserEnvironment,
                 registry: EnvironmentRegistry, cities: CityRegistry,
                 home_city: str):
        self._world = world
        self._rng = world.rng(f"mobility-{environment.user_id}")
        self.environment = environment
        self._cities = cities
        self.city = cities.get(home_city)
        environment.city_name = self.city.name
        environment.move_to(*self.city.center)
        if not registry.has(environment.user_id):
            registry.register(environment)
        self._task: PeriodicTask | None = None
        self._travel_target: City | None = None
        self._travel_step_km = 0.0

    def start(self) -> "CityMobility":
        if self._task is None:
            self._task = self._world.scheduler.every(
                self.UPDATE_PERIOD_S, self._update, delay=self.UPDATE_PERIOD_S)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def travel_to(self, city_name: str, duration_s: float = 3 * 3600.0) -> None:
        """Begin moving towards another city, arriving after ``duration_s``."""
        target = self._cities.get(city_name)
        distance = haversine_km(self.environment.position, target.center)
        steps = max(1.0, duration_s / self.UPDATE_PERIOD_S)
        self._travel_target = target
        self._travel_step_km = distance / steps

    @property
    def travelling(self) -> bool:
        return self._travel_target is not None

    def _update(self) -> None:
        environment = self.environment
        environment.activity = self._next_activity(environment.activity)
        noisy = self._rng.random() < NOISY_GIVEN_ACTIVITY[environment.activity]
        environment.audio = AudioState.NOISY if noisy else AudioState.SILENT
        if self._travel_target is not None:
            self._travel_step()
        else:
            self._wander_step()
        city = self._cities.city_of(environment.position)
        environment.city_name = city.name if city is not None else None

    def _next_activity(self, current: ActivityState) -> ActivityState:
        draw = self._rng.random()
        for state, probability in ACTIVITY_TRANSITIONS[current]:
            draw -= probability
            if draw <= 0:
                return state
        return current

    def _wander_step(self) -> None:
        environment = self.environment
        speed = SPEED_KMH[environment.activity]
        if speed == 0.0:
            return
        distance = speed * self.UPDATE_PERIOD_S / 3600.0
        bearing = self._rng.uniform(0, 2 * math.pi)
        candidate = _offset_position(environment.position, bearing, distance)
        # Stay inside the home city while not travelling.
        if self.city.contains(candidate):
            environment.position = candidate

    def _travel_step(self) -> None:
        environment = self.environment
        target = self._travel_target
        remaining = haversine_km(environment.position, target.center)
        if remaining <= self._travel_step_km:
            environment.position = list(target.center)
            self.city = target
            self._travel_target = None
            return
        fraction = self._travel_step_km / remaining
        environment.position = [
            environment.position[0] + (target.lon - environment.position[0]) * fraction,
            environment.position[1] + (target.lat - environment.position[1]) * fraction,
        ]


class RandomWaypoint:
    """Classic random-waypoint mobility inside a bounding box.

    Used by synthetic scalability workloads that don't need city
    semantics: pick a waypoint, move towards it at walking speed,
    pause, repeat.
    """

    __slots__ = ("_world", "_rng", "environment", "_bbox", "_speed_kmh",
                 "_pause_s", "_waypoint", "_pause_until", "_task")

    UPDATE_PERIOD_S = 30.0

    def __init__(self, world: World, environment: UserEnvironment,
                 registry: EnvironmentRegistry,
                 bbox: tuple[float, float, float, float],
                 speed_kmh: float = 4.5, pause_s: float = 60.0):
        self._world = world
        self._rng = world.rng(f"waypoint-{environment.user_id}")
        self.environment = environment
        self._bbox = bbox  # (min_lon, min_lat, max_lon, max_lat)
        self._speed_kmh = speed_kmh
        self._pause_s = pause_s
        self._waypoint: list[float] | None = None
        self._pause_until = 0.0
        if not registry.has(environment.user_id):
            registry.register(environment)
        min_lon, min_lat, max_lon, max_lat = bbox
        environment.move_to(self._rng.uniform(min_lon, max_lon),
                            self._rng.uniform(min_lat, max_lat))
        self._task: PeriodicTask | None = None

    def start(self) -> "RandomWaypoint":
        if self._task is None:
            self._task = self._world.scheduler.every(
                self.UPDATE_PERIOD_S, self._update, delay=self.UPDATE_PERIOD_S)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _update(self) -> None:
        environment = self.environment
        if self._world.now < self._pause_until:
            environment.activity = ActivityState.STILL
            return
        if self._waypoint is None:
            min_lon, min_lat, max_lon, max_lat = self._bbox
            self._waypoint = [self._rng.uniform(min_lon, max_lon),
                              self._rng.uniform(min_lat, max_lat)]
        environment.activity = ActivityState.WALKING
        step_km = self._speed_kmh * self.UPDATE_PERIOD_S / 3600.0
        remaining = haversine_km(environment.position, self._waypoint)
        if remaining <= step_km:
            environment.position = list(self._waypoint)
            self._waypoint = None
            self._pause_until = self._world.now + self._pause_s
            return
        fraction = step_km / remaining
        environment.position = [
            environment.position[0]
            + (self._waypoint[0] - environment.position[0]) * fraction,
            environment.position[1]
            + (self._waypoint[1] - environment.position[1]) * fraction,
        ]
