"""Hardware calibration constants.

Every constant here is matched against a measurement the paper reports
for its Samsung Galaxy N7000 testbed, so that the reproduction's
micro-benchmarks land in the same regime.  The *shape* of the results
(orderings, ratios, crossovers) is what the benchmarks assert; absolute
values are anchored to the paper's figures where it states them.

Units: energy in mAh (the paper's Figure 4 axis), memory in MB,
CPU load in percent of one core.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Battery (Samsung Galaxy N7000: 2500 mAh battery)
# --------------------------------------------------------------------------

BATTERY_CAPACITY_MAH = 2500.0

#: Idle per-app attribution while the middleware sits in the background.
#: Together with keep-alive pings it forms Table 4's ~6 µAh non-action
#: base (51.7 µAh at one action vs ~45.4 µAh marginal cost per action).
IDLE_DRAIN_MAH_PER_HOUR = 0.004

# --------------------------------------------------------------------------
# Sensor sampling energy, per sensing cycle (Figure 4, "Sampling" bars).
# One cycle = one activation of the sensor with the ESSensorManager
# default window (e.g. accelerometer: 50 Hz for 8 s; GPS: one fix).
# --------------------------------------------------------------------------

SAMPLING_MAH = {
    "accelerometer": 0.0020,
    "microphone": 0.0035,
    "location": 0.0125,   # GPS is by far the most expensive sensor [13]
    "wifi": 0.0022,
    "bluetooth": 0.0030,
}

#: Classification energy per cycle (Figure 4, "Classification" bars).
#: Classifying raw accelerometer windows into still/walking/running
#: halves the total cycle cost because it avoids transmitting the raw
#: vector (paper §5.3).
CLASSIFICATION_MAH = {
    "accelerometer": 0.0015,
    "microphone": 0.0010,
    "location": 0.0005,
    "wifi": 0.0004,
    "bluetooth": 0.0004,
}

#: The Google Activity Recognition (GAR) baseline outsources sensing to
#: Google Play Services; the paper measures it ~25 % below SenSocial's
#: classified accelerometer stream.
GAR_CYCLE_MAH = 0.0042

# --------------------------------------------------------------------------
# Radio energy model.  Transmission cost = per-burst wake-up overhead
# (the Cool-Tether energy tail [40]) + a per-byte marginal cost.  Bursts
# arriving while the radio is still in its high-power tail do not pay
# the overhead again — the push-vs-poll ablation rests on this.
# Tiny control packets (MQTT keep-alive, acks) ride network signalling
# and pay a reduced wake cost; without this, 60 s keep-alive pings would
# dwarf Table 4's measured non-action base.
# --------------------------------------------------------------------------

RADIO_TX_OVERHEAD_MAH = 0.0016
RADIO_TX_PER_BYTE_MAH = 0.00000148
RADIO_RX_OVERHEAD_MAH = 0.00025
RADIO_RX_PER_BYTE_MAH = 0.0000007
RADIO_CONTROL_SIZE_BYTES = 64          # packets below this are "control"
RADIO_CONTROL_OVERHEAD_MAH = 0.00025
RADIO_TAIL_SECONDS = 2.0

# --------------------------------------------------------------------------
# Sensor payload sizes (bytes on the wire per cycle).  With the radio
# model above these reproduce Figure 4's "Transmission" bars: raw
# accelerometer (a 3-axis vector sampled every 20 ms for 8 s) dominates,
# classified payloads are a few bytes.
# --------------------------------------------------------------------------

RAW_PAYLOAD_BYTES = {
    "accelerometer": 6000,
    "microphone": 700,
    "location": 60,
    "wifi": 220,
    "bluetooth": 120,
}

CLASSIFIED_PAYLOAD_BYTES = {
    "accelerometer": 24,
    "microphone": 18,
    "location": 32,
    "wifi": 40,
    "bluetooth": 30,
}

# --------------------------------------------------------------------------
# Sensor timing (ESSensorManager defaults, §4 "Sensor Sampling").
# --------------------------------------------------------------------------

SENSE_WINDOW_SECONDS = {
    "accelerometer": 8.0,    # sampled every 20 ms for eight seconds (§5.3)
    "microphone": 5.0,
    "location": 10.0,        # time to a GPS fix
    "wifi": 3.0,
    "bluetooth": 6.0,        # one discovery scan
}

#: Default period between sensing cycles for subscription-based streams;
#: the evaluation samples "every 60 seconds for each of the streams" (§5.3).
DEFAULT_DUTY_CYCLE_SECONDS = 60.0

#: Completing a trigger takes ~120 s: ~60 s of sensor sampling plus ~60 s
#: for the trigger to arrive from Facebook (§5.5) — this bounds Table 4
#: at seven actions per 20-minute window.
TRIGGER_COMPLETION_SECONDS = 120.0

# --------------------------------------------------------------------------
# CPU model (Figure 5).  Streams consumed locally barely load the CPU;
# streams transmitted to the server pay serialisation + socket work per
# cycle.  Calibrated so 50 server streams sit near the paper's ~55 %
# and 5 streams stay under 10 %.
# --------------------------------------------------------------------------

CPU_BASE_LOAD_PCT = 1.0
CPU_LOCAL_STREAM_PCT = 0.09
CPU_SERVER_STREAM_PCT = 1.10
CPU_CLASSIFIER_PCT = 0.25

# --------------------------------------------------------------------------
# Memory model (Table 2 + §5.5).  DDMS-style heap accounting: a plain
# Android app allocates ~9.3 MB / ~40 k objects; the GAR client library
# adds ~1.8 MB / ~6.2 k objects; the SenSocial middleware core adds
# ~3.0 MB / ~11.4 k objects.  Streams themselves are near-free handles
# (buffers live in the core): §5.5 measures that "the number of streams
# does not affect the memory consumption of the application".  With
# these constants the five-stream stub app sits ~1.2 MB above GAR, as
# Table 2 reports.
# --------------------------------------------------------------------------

HEAP_BASE_APP_MB = 9.33
HEAP_BASE_APP_OBJECTS = 40_000
HEAP_SENSOCIAL_CORE_MB = 2.985
HEAP_SENSOCIAL_CORE_OBJECTS = 11_300
HEAP_PER_STREAM_MB = 0.006
HEAP_PER_STREAM_OBJECTS = 24
HEAP_GAR_LIBRARY_MB = 1.80
HEAP_GAR_LIBRARY_OBJECTS = 6_210
#: Dalvik grows the heap limit ahead of demand by roughly this factor.
HEAP_HEADROOM_FACTOR = 1.095

# --------------------------------------------------------------------------
# OSN notification delays (Table 3).  The bulk of the OSN-to-server
# delay is Facebook itself: the paper measures 46.5 s mean (σ 2.8) to
# the server and 55.4 s (σ 2.5) to the mobile, i.e. ~9 s of server
# processing + MQTT push.  The Twitter plug-in polls, so its delay is
# bounded by the poll period ("arbitrarily short", §5.4).
# --------------------------------------------------------------------------

FACEBOOK_NOTIFY_MEAN_S = 45.9
FACEBOOK_NOTIFY_SIGMA_S = 2.7
SERVER_PROCESSING_MEAN_S = 8.0
SERVER_PROCESSING_SIGMA_S = 0.8
MQTT_PUSH_LATENCY_S = 0.35
TWITTER_POLL_PERIOD_S = 10.0

# --------------------------------------------------------------------------
# Network latencies.
# --------------------------------------------------------------------------

WIFI_LATENCY_MEAN_S = 0.040
WIFI_LATENCY_JITTER_S = 0.015
SERVER_LAN_LATENCY_S = 0.002
