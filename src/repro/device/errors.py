"""Device substrate errors."""


class DeviceError(Exception):
    """Base class for device simulation errors."""


class SensorError(DeviceError):
    """Raised for unknown sensor modalities or invalid sensing configs."""
