"""CPU load model.

Components register steady-state loads (percent of one core) under a
name; the total is what Figure 5 plots against the number of active
streams.  Transient work (a classification pass) can be recorded as a
busy pulse that decays at the next sample, mimicking how TraceView
averages short spikes.
"""

from __future__ import annotations

from repro.device.errors import DeviceError


class CpuModel:
    """Additive steady-state loads plus transient pulses, capped at 100 %."""

    __slots__ = ("base_load_pct", "_loads", "_pulse_pct")

    def __init__(self, base_load_pct: float = 0.0):
        if base_load_pct < 0:
            raise DeviceError(f"base load must be >= 0, got {base_load_pct}")
        self.base_load_pct = base_load_pct
        self._loads: dict[str, float] = {}
        self._pulse_pct = 0.0

    def set_load(self, name: str, pct: float) -> None:
        """Register or update a steady load component."""
        if pct < 0:
            raise DeviceError(f"load must be >= 0, got {pct}")
        self._loads[name] = pct

    def clear_load(self, name: str) -> None:
        self._loads.pop(name, None)

    def pulse(self, pct: float) -> None:
        """Record transient work visible in the next utilisation sample."""
        if pct < 0:
            raise DeviceError(f"pulse must be >= 0, got {pct}")
        self._pulse_pct += pct

    def utilization_pct(self) -> float:
        """Current total load (consumes any pending pulse), capped at 100."""
        total = self.base_load_pct + sum(self._loads.values()) + self._pulse_pct
        self._pulse_pct = 0.0
        return min(100.0, total)

    def steady_load_pct(self) -> float:
        """Steady-state load only (no pulses, no cap reset)."""
        return min(100.0, self.base_load_pct + sum(self._loads.values()))

    def load_names(self) -> list[str]:
        return sorted(self._loads)
