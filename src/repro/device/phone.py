"""The smartphone: hardware models + sensors + a network presence."""

from __future__ import annotations

from typing import Any, Callable

from repro.device import calibration
from repro.device.battery import Battery, EnergyCategory
from repro.device.cpu import CpuModel
from repro.device.environment import EnvironmentRegistry, UserEnvironment
from repro.device.errors import SensorError
from repro.device.memory import HeapModel
from repro.device.radio import Radio
from repro.device.sensors import (
    AccelerometerSensor,
    BluetoothSensor,
    GpsSensor,
    MicrophoneSensor,
    Sensor,
    WifiSensor,
)
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.simkit.world import World


class Smartphone(Endpoint):
    """One simulated handset owned by one user.

    The phone is a network endpoint (address ``device/<id>``); app-layer
    payloads are dispatched to handlers registered per protocol key, and
    an idle-drain task attributes background energy the way PowerTutor
    attributes an app's idle cost.
    """

    IDLE_ACCOUNTING_PERIOD_S = 60.0

    def __init__(self, world: World, network: Network,
                 env_registry: EnvironmentRegistry, user_id: str,
                 device_id: str | None = None):
        self._world = world
        self._network = network
        self.user_id = user_id
        # Device ids come from a per-world sequence, not a module
        # global: back-to-back simulations must name devices identically.
        self.device_id = device_id or f"d{world.sequence('device'):04d}"
        self.address = f"device/{self.device_id}"

        if env_registry.has(user_id):
            self.environment = env_registry.get(user_id)
        else:
            self.environment = env_registry.register(UserEnvironment(user_id))

        self.battery = Battery()
        self.cpu = CpuModel(base_load_pct=0.0)
        self.heap = HeapModel()
        self.heap.allocate("app-base", calibration.HEAP_BASE_APP_MB,
                           calibration.HEAP_BASE_APP_OBJECTS)
        self.radio = Radio(world, self.battery)

        self.sensors: dict[str, Sensor] = {
            "accelerometer": AccelerometerSensor(world, self.battery, self.environment),
            "microphone": MicrophoneSensor(world, self.battery, self.environment),
            "location": GpsSensor(world, self.battery, self.environment),
            "wifi": WifiSensor(world, self.battery, self.environment, env_registry),
            "bluetooth": BluetoothSensor(world, self.battery, self.environment,
                                         env_registry),
        }

        self._handlers: dict[str, Callable[[Any, Message], None]] = {}
        network.register(self.address, self)
        world.scheduler.every(self.IDLE_ACCOUNTING_PERIOD_S, self._account_idle,
                              delay=self.IDLE_ACCOUNTING_PERIOD_S)

    # -- sensing --------------------------------------------------------

    def sensor(self, modality: str) -> Sensor:
        try:
            return self.sensors[modality]
        except KeyError:
            raise SensorError(
                f"device {self.device_id!r} has no {modality!r} sensor; "
                f"available: {sorted(self.sensors)}") from None

    def supported_modalities(self) -> list[str]:
        return sorted(self.sensors)

    # -- app-layer networking --------------------------------------------

    def on_protocol(self, key: str, handler: Callable[[Any, Message], None]) -> None:
        """Register a handler for payloads sent with ``protocol`` = key."""
        self._handlers[key] = handler

    def send(self, dst: str, protocol: str, payload: Any,
             size: int | None = None, coalesced: int = 1) -> Message:
        """Send an app-layer payload from this phone."""
        return self._network.send(self.address, dst, payload, size=size,
                                  headers={"protocol": protocol},
                                  coalesced=coalesced)

    def deliver(self, message: Message) -> None:
        protocol = message.headers.get("protocol")
        handler = self._handlers.get(protocol)
        if handler is not None:
            handler(message.payload, message)

    # -- internals ---------------------------------------------------------

    def _account_idle(self) -> None:
        amount = (calibration.IDLE_DRAIN_MAH_PER_HOUR
                  * self.IDLE_ACCOUNTING_PERIOD_S / 3600.0)
        self.battery.drain(amount, "system", EnergyCategory.IDLE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Smartphone {self.device_id} user={self.user_id} "
                f"battery={self.battery.level:.3f}>")
