"""Heap model: DDMS-style memory accounting.

Android retains paused apps in memory and kills large ones first
(§5.2), so the paper reports heap-allowed, heap-allocated and object
counts for a stub middleware app.  Components register allocations
under a name; the heap limit grows ahead of demand the way Dalvik's
does.
"""

from __future__ import annotations

from repro.device.calibration import HEAP_HEADROOM_FACTOR
from repro.device.errors import DeviceError


class HeapModel:
    """Named allocations with Dalvik-like headroom growth."""

    __slots__ = ("_headroom", "_allocations", "_high_water_mb")

    def __init__(self, headroom_factor: float = HEAP_HEADROOM_FACTOR):
        if headroom_factor < 1.0:
            raise DeviceError(
                f"headroom factor must be >= 1, got {headroom_factor}")
        self._headroom = headroom_factor
        self._allocations: dict[str, tuple[float, int]] = {}
        self._high_water_mb = 0.0

    def allocate(self, name: str, megabytes: float, objects: int) -> None:
        """Register (or grow) the allocation owned by ``name``."""
        if megabytes < 0 or objects < 0:
            raise DeviceError("allocations must be non-negative")
        current_mb, current_objects = self._allocations.get(name, (0.0, 0))
        self._allocations[name] = (current_mb + megabytes, current_objects + objects)
        self._high_water_mb = max(self._high_water_mb, self.allocated_mb)

    def free(self, name: str) -> None:
        """Release everything owned by ``name``; idempotent."""
        self._allocations.pop(name, None)

    @property
    def allocated_mb(self) -> float:
        return sum(megabytes for megabytes, _ in self._allocations.values())

    @property
    def object_count(self) -> int:
        return sum(objects for _, objects in self._allocations.values())

    @property
    def allowed_mb(self) -> float:
        """The heap limit: grows with the high-water mark, never shrinks."""
        return self._high_water_mb * self._headroom

    def owners(self) -> list[str]:
        return sorted(self._allocations)

    def footprint(self) -> dict[str, tuple[float, int]]:
        """Per-owner (MB, objects) snapshot."""
        return dict(self._allocations)
