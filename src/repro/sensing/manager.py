"""The sensing manager: one-off and subscription-based sampling."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading
from repro.sensing.config import SensingConfig
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

#: Callback receiving each completed sensing cycle.
ReadingCallback = Callable[[SensorReading], None]

#: Transient CPU cost of driving one sampling cycle, percent.
_SAMPLING_CPU_PULSE_PCT = 0.6


@dataclass
class SensingSubscription:
    """A live subscription-based sensing registration."""

    subscription_id: int
    modality: str
    config: SensingConfig
    callback: ReadingCallback
    task: PeriodicTask

    @property
    def active(self) -> bool:
        return not self.task.cancelled


class ESSensorManager:
    """Per-device sensing manager.

    One instance per phone (the real library is a singleton per app
    process); obtained through :meth:`get_for` to mirror that pattern
    while staying testable.
    """

    _instances: dict[str, "ESSensorManager"] = {}

    def __init__(self, world: World, phone: Smartphone):
        self._world = world
        self._phone = phone
        self._subscriptions: dict[int, SensingSubscription] = {}
        # Per-manager, not module-global: repeated simulations in one
        # process must hand out identical subscription ids.
        self._subscription_seq = itertools.count(1)
        self.one_off_count = 0

    @classmethod
    def get_for(cls, world: World, phone: Smartphone) -> "ESSensorManager":
        """The per-device singleton accessor."""
        manager = cls._instances.get(phone.device_id)
        if manager is None or manager._world is not world:
            manager = cls(world, phone)
            cls._instances[phone.device_id] = manager
        return manager

    @classmethod
    def reset_instances(cls) -> None:
        """Forget all singletons (used between tests/benches)."""
        cls._instances.clear()

    # -- one-off sensing (for OSN-triggered streams) -----------------------

    def sense_once(self, modality: str, callback: ReadingCallback) -> None:
        """Sample ``modality`` a single time; energy is spent only now.

        "One-off sensing is used for streams that are conditioned on
        the OSN action trigger ... sensing is triggered once, remotely,
        only if an OSN action is observed" (§4).
        """
        sensor = self._phone.sensor(modality)
        self.one_off_count += 1
        # The reading becomes available once the sensing window closes.
        self._world.scheduler.schedule(
            sensor.window_seconds, self._complete_cycle, sensor, callback)

    # -- subscription-based sensing ----------------------------------------

    def subscribe(self, modality: str, config: SensingConfig,
                  callback: ReadingCallback) -> SensingSubscription:
        """Sample ``modality`` every ``config.duty_cycle_s`` seconds."""
        sensor = self._phone.sensor(modality)
        subscription_id = next(self._subscription_seq)
        task = self._world.scheduler.every(
            config.duty_cycle_s,
            lambda: self._complete_cycle(sensor, callback, config),
            delay=sensor.window_seconds,
        )
        subscription = SensingSubscription(
            subscription_id=subscription_id, modality=modality,
            config=config, callback=callback, task=task)
        self._subscriptions[subscription_id] = subscription
        return subscription

    def unsubscribe(self, subscription_id: int) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is not None:
            subscription.task.cancel()

    def active_subscriptions(self) -> list[SensingSubscription]:
        return [subscription for subscription in self._subscriptions.values()
                if subscription.active]

    def unsubscribe_all(self) -> None:
        for subscription_id in list(self._subscriptions):
            self.unsubscribe(subscription_id)

    # -- internals -----------------------------------------------------------

    def _complete_cycle(self, sensor, callback: ReadingCallback,
                        config: SensingConfig | None = None) -> None:
        reading = sensor.sample()
        if config is not None and config.sample_rate != 1.0:
            reading.wire_bytes = max(1, int(reading.wire_bytes * config.sample_rate))
        self._phone.cpu.pulse(_SAMPLING_CPU_PULSE_PCT)
        callback(reading)
