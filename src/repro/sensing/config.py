"""Sensing settings: the key-value object of the paper's API.

``SenSocial Manager exposes the API calls to define the duty cycle and
sample rate of a stream in a key-value object.  These settings are
later passed to the ESSensorManager library`` (§4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device import calibration
from repro.device.errors import SensorError


@dataclass(frozen=True)
class SensingConfig:
    """Duty cycle and sample-rate settings for one stream."""

    #: Seconds between the starts of consecutive sensing cycles.
    duty_cycle_s: float = calibration.DEFAULT_DUTY_CYCLE_SECONDS
    #: Multiplier on the sensor's default within-window sample rate;
    #: kept for API fidelity, affects payload size proportionally.
    sample_rate: float = 1.0

    def __post_init__(self):
        if self.duty_cycle_s <= 0:
            raise SensorError(f"duty cycle must be > 0, got {self.duty_cycle_s}")
        if self.sample_rate <= 0:
            raise SensorError(f"sample rate must be > 0, got {self.sample_rate}")

    @classmethod
    def from_settings(cls, settings: dict | None) -> "SensingConfig":
        """Build from the key-value settings object developers pass."""
        if not settings:
            return cls()
        known = {"duty_cycle_s", "sample_rate"}
        unknown = set(settings) - known
        if unknown:
            raise SensorError(f"unknown sensing settings: {sorted(unknown)}")
        return cls(
            duty_cycle_s=float(settings.get(
                "duty_cycle_s", calibration.DEFAULT_DUTY_CYCLE_SECONDS)),
            sample_rate=float(settings.get("sample_rate", 1.0)),
        )

    def to_settings(self) -> dict:
        return {"duty_cycle_s": self.duty_cycle_s, "sample_rate": self.sample_rate}

    def scaled(self, factor: float) -> "SensingConfig":
        """This config with the duty cycle stretched by ``factor``.

        Used by server-pushed rate backoff: factor 2 halves the
        sensing rate.  Factor 1.0 returns an identical config (and
        ``duty_cycle_s * 1.0`` is exact in IEEE-754, preserving
        bit-identity when no backoff is in force).
        """
        if factor <= 0:
            raise SensorError(f"rate factor must be > 0, got {factor}")
        return SensingConfig(duty_cycle_s=self.duty_cycle_s * factor,
                             sample_rate=self.sample_rate)
