"""Adaptive sensing library (ESSensorManager stand-in [30]).

SenSocial's Sensor Manager delegates to this layer for the two
sampling modes of §4: **one-off sensing** (a single remotely triggered
cycle, used for social-event-based streams) and **subscription-based
sensing** (continuous duty-cycled sampling).  Duty cycle and sample
rate arrive as key-value settings objects, exactly like the paper's
API.
"""

from repro.sensing.config import SensingConfig
from repro.sensing.manager import ESSensorManager, SensingSubscription

__all__ = ["ESSensorManager", "SensingConfig", "SensingSubscription"]
