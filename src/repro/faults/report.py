"""Chaos run reports: what was injected, what survived, what it cost."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ChaosReport:
    """Delivery/drop/recovery accounting for one chaos run."""

    plan_name: str
    injected: list[tuple[float, str]] = field(default_factory=list)
    network: dict[str, int] = field(default_factory=dict)
    broker: dict[str, int] = field(default_factory=dict)
    server: dict[str, Any] = field(default_factory=dict)
    devices: list[dict[str, Any]] = field(default_factory=list)
    #: Per-client seconds from the last broker restart to reconnection.
    recovery_delays: dict[str, float] = field(default_factory=dict)
    #: Observability snapshot (``ObsReport.to_dict()``) when the run's
    #: world had the obs hub installed; ``None`` otherwise.
    obs: dict[str, Any] | None = None
    #: SLO/alert snapshot (``SloControlPlane.report()``) when the run
    #: deployed a control plane; ``None`` otherwise.
    slo: dict[str, Any] | None = None

    # -- derived ------------------------------------------------------

    @property
    def records_enqueued(self) -> int:
        return sum(device["enqueued"] for device in self.devices)

    @property
    def records_queued(self) -> int:
        return sum(device["queued"] for device in self.devices)

    @property
    def records_dropped(self) -> int:
        return sum(device["dropped"] for device in self.devices)

    @property
    def records_ingested(self) -> int:
        return int(self.server.get("records_received", 0))

    @property
    def duplicates_dropped(self) -> int:
        return int(self.server.get("duplicates_dropped", 0))

    @property
    def records_lost(self) -> int:
        """Records that left a device and never reached the server —
        zero at quiescence unless an outbox overflowed mid-partition."""
        return (self.records_enqueued - self.records_queued
                - self.records_dropped - self.records_ingested)

    def _recovery_lines(self, durability: dict[str, Any],
                        counters: dict[str, Any]) -> list[str]:
        """The recovery/corruption section: frame damage accounting and
        the replay-failure taxonomy of the last recovery scan."""
        damage = {name: counters.get(name, 0) for name in (
            "journal_frames_torn", "journal_frames_quarantined",
            "journal_frames_discarded", "journal_bytes_truncated",
            "journal_snapshot_fallbacks", "journal_snapshot_unrecoverable")}
        recovery = durability.get("recovery")
        if not any(damage.values()) and recovery is None:
            return []
        lines = [
            "",
            "recovery:",
            f"  torn frames          {damage['journal_frames_torn']} "
            f"({damage['journal_bytes_truncated']} bytes truncated)",
            f"  quarantined frames   {damage['journal_frames_quarantined']} "
            f"(+{damage['journal_frames_discarded']} intact frames "
            f"discarded after them)",
            f"  snapshot fallbacks   "
            f"{damage['journal_snapshot_fallbacks']} full-history, "
            f"{damage['journal_snapshot_unrecoverable']} unrecoverable",
        ]
        if recovery is not None:
            scan = recovery.get("scan", {})
            lines.append(
                f"  last scan            {scan.get('scanned_frames', 0)} "
                f"frames, {recovery.get('replayed', 0)} replayed, "
                f"{recovery.get('replay_failed', 0)} failed, "
                f"snapshot {scan.get('snapshot_status', 'none')}")
            for failure in recovery.get("replay_failures", []):
                lines.append(
                    f"  replay failure       seq={failure['seq']} "
                    f"{failure['op']} on {failure['collection']!r}: "
                    f"{failure['error']}")
        return lines

    def format(self) -> str:
        lines = [f"chaos report — plan {self.plan_name!r}",
                 "", "injected faults:"]
        if self.injected:
            lines += [f"  [{at:8.1f}s] {what}" for at, what in self.injected]
        else:
            lines.append("  (none)")
        lines += [
            "",
            "delivery:",
            f"  records enqueued     {self.records_enqueued}",
            f"  records ingested     {self.records_ingested}",
            f"  duplicates dropped   {self.duplicates_dropped}",
            f"  still queued         {self.records_queued}",
            f"  outbox evictions     {self.records_dropped}",
            f"  records lost         {self.records_lost}",
            "",
            "network:",
            f"  messages sent        {self.network.get('messages_sent', 0)}",
            f"  messages delivered   {self.network.get('messages_delivered', 0)}",
            f"  partition drops      {self.network.get('partition_drops', 0)}",
            f"  loss drops           {self.network.get('loss_drops', 0)}",
            "",
            "broker:",
            f"  crashes / restarts   "
            f"{self.broker.get('crashes', 0)} / {self.broker.get('restarts', 0)}",
            f"  sessions expired     {self.broker.get('sessions_expired', 0)}",
        ]
        if self.server.get("crashes") or self.server.get("restarts"):
            lines += [
                "",
                "server:",
                f"  crashes / restarts   "
                f"{self.server.get('crashes', 0)} / "
                f"{self.server.get('restarts', 0)}",
                f"  actions lost (down)  "
                f"{self.server.get('actions_lost_crashed', 0)}",
            ]
        durability = self.server.get("durability")
        if durability is not None:
            counters = durability.get("counters", {})
            lines += [
                "",
                "durability:",
                f"  journal appends      {counters.get('journal_appends', 0)}",
                f"  checkpoints          {counters.get('checkpoints', 0)}",
                f"  replayed entries     {counters.get('replayed_entries', 0)}"
                f" over {counters.get('recoveries', 0)} recoveries",
                f"  records shed         {counters.get('records_shed', 0)}",
                f"  quarantined          "
                f"{counters.get('records_quarantined', 0)}",
                f"  breaker trips        {counters.get('breaker_trips', 0)}",
                f"  intake max depth     "
                f"{counters.get('intake_max_depth', 0)}",
            ]
            lines += self._recovery_lines(durability, counters)
        lines += ["", "devices:"]
        for device in self.devices:
            state = "up" if device["connected"] else "DEGRADED"
            lines.append(
                f"  {device['device_id']:12s} {state:8s} "
                f"queued={device['queued']} dropped={device['dropped']} "
                f"losses={device['connection_losses']} "
                f"reconnects={device['reconnects']}")
        if self.recovery_delays:
            lines += ["", "recovery after last broker restart:"]
            for client_id, delay in sorted(self.recovery_delays.items()):
                lines.append(f"  {client_id:24s} {delay:6.1f}s")
        if self.obs is not None:
            terminals = self.obs.get("terminals", {})
            lines += [
                "",
                "observability:",
                f"  traces started       "
                f"{self.obs.get('traces_started', 0)}",
                f"  delivered / dropped  "
                f"{terminals.get('delivered', 0)} / "
                f"{terminals.get('dropped', 0)}",
                f"  in-flight at report  {terminals.get('in_flight', 0)}",
                f"  chain completeness   "
                f"{self.obs.get('completeness', 0.0):.4f}",
            ]
            for drop in self.obs.get("drops", []):
                lines.append(
                    f"  drop {drop['stage']}/{drop['reason']:20s} "
                    f"{drop['count']}")
        if self.slo is not None:
            lines += ["", "slo control plane:"]
            for name in sorted(self.slo.get("slos", {})):
                doc = self.slo["slos"][name]
                lines.append(
                    f"  {name:22s} {doc['state']:9s} "
                    f"fast={doc['burn_fast']:6.2f} "
                    f"slow={doc['burn_slow']:6.2f}")
            for entry in self.slo.get("alert_log", []):
                lines.append(
                    f"  [{entry['at']:8.1f}s] {entry['alert']:22s} "
                    f"{entry['from']} -> {entry['to']}"
                    f" ({entry['severity'] or '-'})")
            actions = self.slo.get("actions", {})
            lines.append(
                f"  actions: backoff x{actions.get('backoff_factor', 1.0)}, "
                f"{actions.get('backoffs_pushed', 0)} backoffs, "
                f"{actions.get('restores_pushed', 0)} restores, "
                f"{actions.get('autoscales', 0)} autoscales")
            problems = self.slo.get("accounting_problems", [])
            if problems:
                lines.append(f"  ACCOUNTING PROBLEMS: {problems}")
        return "\n".join(lines)
