"""Fault injection: scripted failures for resilience testing.

``FaultPlan`` declares *what* goes wrong and *when* (symbolic targets,
absolute times); ``ChaosController`` binds a plan to a wired testbed
and drives it through the world scheduler; ``ChaosReport`` accounts
for what was injected and what the middleware delivered anyway.
"""

from repro.faults.controller import ChaosController
from repro.faults.errors import FaultError, FaultTargetError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.plans import NAMED_PLANS, build_plan
from repro.faults.report import ChaosReport

__all__ = [
    "ChaosController",
    "ChaosReport",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FaultTargetError",
    "NAMED_PLANS",
    "build_plan",
]
