"""Named fault plans for the ``repro chaos`` CLI and scenario tests.

Each builder takes a ``horizon`` (total run length in seconds) and
scales its fault windows to it, so ``repro chaos --minutes 30`` and a
five-minute smoke run both exercise the same shape of trouble.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import FaultPlan
from repro.net.latency import UniformLatency


def broker_restart_plan(horizon: float) -> FaultPlan:
    """Crash the broker a third of the way in; 60 s of downtime."""
    return FaultPlan("broker-restart").broker_restart(
        at=horizon / 3.0, downtime=min(60.0, horizon / 6.0))


def partition_plan(horizon: float) -> FaultPlan:
    """Partition every device for 60 s mid-run."""
    return FaultPlan("partition").partition(
        "devices", start=horizon / 2.0, duration=min(60.0, horizon / 4.0))


def flaky_plan(horizon: float) -> FaultPlan:
    """Lossy, jittery radio on every device for the whole run."""
    return (FaultPlan("flaky")
            .packet_loss("devices", rate=0.05)
            .jitter("devices", UniformLatency(0.0, 0.5)))


def osn_outage_plan(horizon: float) -> FaultPlan:
    """The Facebook plug-in stops capturing actions for a stretch."""
    return FaultPlan("osn-outage").plugin_outage(
        "facebook", start=horizon / 4.0, duration=horizon / 4.0)


def churn_plan(horizon: float) -> FaultPlan:
    """Devices flap through patchy coverage plus one broker restart."""
    return (FaultPlan("churn")
            .flap("devices", start=horizon / 6.0, cycles=3,
                  down_for=min(45.0, horizon / 10.0),
                  up_for=min(90.0, horizon / 5.0))
            .broker_restart(at=2.0 * horizon / 3.0,
                            downtime=min(30.0, horizon / 10.0)))


def server_crash_plan(horizon: float) -> FaultPlan:
    """Kill the server mid-run; bring it back after a short outage."""
    return FaultPlan("server-crash").server_crash(
        at=horizon / 2.0, downtime=min(60.0, horizon / 6.0))


def storage_stress_plan(horizon: float) -> FaultPlan:
    """Degrade durable storage: a burst of write failures early, then
    a stretch of elevated write latency (drain backs up, intake sheds)."""
    return (FaultPlan("storage-stress")
            .storage_write_errors(at=horizon / 4.0, count=8)
            .storage_latency(at=horizon / 2.0, seconds=2.0,
                             duration=horizon / 4.0))


def slo_burn_plan(horizon: float) -> FaultPlan:
    """Burn the delivery-delay error budget hard enough to page.

    A long stretch of 25 s durable-write latency pushes the drain
    pump's service time past the record inter-arrival time, so the
    intake queue builds and every delivery lands far beyond the 30 s
    objective — a *sustained* burn across many evaluation windows
    (unlike a crash, whose backlog drains in one burst a single
    window dilutes away).  The plan *declares* the page it expects —
    the chaos CLI fails the run if an SLO control plane is deployed
    and the alert never fires.
    """
    return (FaultPlan("slo-burn")
            .storage_latency(at=horizon / 4.0, seconds=25.0,
                             duration=horizon / 3.0)
            .expect_alert("delivery-delay-p95"))


def torn_tail_plan(horizon: float) -> FaultPlan:
    """Power dies mid-append: the journal tail ends in half a frame.

    Recovery must classify the torn frame, truncate it, and converge
    with zero acknowledged loss — the torn write was never acked, so
    the sender's outbox redelivers it after the restart.  The plan's
    derived expectations pin exactly one torn frame; any *other*
    corruption fails the run.
    """
    return FaultPlan("torn-tail").torn_write(
        at=horizon / 2.0, downtime=min(60.0, horizon / 6.0))


def bitrot_plan(horizon: float) -> FaultPlan:
    """A hostile medium: the checkpoint snapshot rots, then a mid-tail
    frame rots.

    Phase 1 (early crash/restart) seeds a checkpoint.  Phase 2 flips a
    bit in that snapshot and crashes: recovery must fall back to
    full-journal replay — possible only because checkpoints retain
    history — and the fresh post-recovery checkpoint repairs the
    snapshot.  Phase 3 flips a bit in a *new* tail frame and crashes:
    recovery quarantines it, keeps the longest valid prefix, and stays
    loudly degraded (acked data may be gone).  The chaos CLI passes
    the run only because the plan *declares* exactly this damage
    (one fallback, one quarantined frame); the same counters from an
    undeclared plan exit nonzero.
    """
    downtime = min(30.0, horizon / 12.0)
    plan = FaultPlan("bitrot")
    plan.server_crash(at=horizon * 0.2, downtime=downtime)
    plan.corrupt_snapshot(at=horizon * 0.45)
    plan.server_crash(at=horizon * 0.45, downtime=downtime)
    plan.corrupt_frame(at=horizon * 0.7)
    plan.server_crash(at=horizon * 0.75, downtime=downtime)
    return plan


def none_plan(horizon: float) -> FaultPlan:
    """An empty plan: a control run with the chaos machinery attached."""
    return FaultPlan("none")


NAMED_PLANS: dict[str, Callable[[float], FaultPlan]] = {
    "broker-restart": broker_restart_plan,
    "partition": partition_plan,
    "flaky": flaky_plan,
    "osn-outage": osn_outage_plan,
    "churn": churn_plan,
    "server-crash": server_crash_plan,
    "storage-stress": storage_stress_plan,
    "slo-burn": slo_burn_plan,
    "torn-tail": torn_tail_plan,
    "bitrot": bitrot_plan,
    "none": none_plan,
}


def build_plan(name: str, horizon: float) -> FaultPlan:
    """Build the named plan scaled to ``horizon`` seconds."""
    try:
        builder = NAMED_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_PLANS))
        raise KeyError(f"unknown fault plan {name!r}; known: {known}") from None
    return builder(float(horizon))
