"""The chaos controller: applies a :class:`FaultPlan` to a deployment.

The controller resolves a plan's symbolic targets against a wired
:class:`repro.scenarios.SenSocialTestbed` (or any object exposing the
same ``world`` / ``network`` / ``broker`` / ``server`` / ``nodes``
attributes), schedules every fault on the world scheduler, and keeps a
log of what fired when.  Because scheduling and all fault randomness
ride the seeded world, a chaos run is exactly as reproducible as a
fault-free one — and applying an *empty* plan changes nothing at all.
"""

from __future__ import annotations

from typing import Any

from repro.faults.errors import FaultTargetError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.report import ChaosReport


class ChaosController:
    """Scripts faults against a testbed, reproducibly from the seed."""

    def __init__(self, testbed: Any):
        self.testbed = testbed
        self.world = testbed.world
        self.network = testbed.network
        self.broker = testbed.broker
        self.server = testbed.server
        self.injected: list[tuple[float, str]] = []
        self.plans_applied: list[FaultPlan] = []
        self._last_broker_restart_at: float | None = None
        self._recovery: dict[str, float] = {}

    # -- applying plans -----------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` on the world scheduler.

        Event times are absolute simulated instants; an event already
        in the past fires immediately.
        """
        self.plans_applied.append(plan)
        now = self.world.now
        for event in plan.events():
            self.world.scheduler.schedule_at(max(event.at, now),
                                             self._fire, event)

    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_do_{event.kind}", None)
        if handler is None:
            raise FaultTargetError(f"unknown fault kind {event.kind!r}")
        handler(event)
        self.injected.append((self.world.now, event.describe()))

    # -- fault handlers -----------------------------------------------

    def _do_link_down(self, event: FaultEvent) -> None:
        for address in self._addresses(event.target):
            self.network.set_down(address)

    def _do_link_up(self, event: FaultEvent) -> None:
        for address in self._addresses(event.target):
            self.network.set_down(address, False)

    _do_device_down = _do_link_down
    _do_device_up = _do_link_up

    def _do_loss(self, event: FaultEvent) -> None:
        for address in self._addresses(event.target):
            self.network.set_endpoint_loss(address, event.params["rate"])

    def _do_jitter(self, event: FaultEvent) -> None:
        for address in self._addresses(event.target):
            self.network.set_endpoint_jitter(address, event.params["model"])

    def _do_broker_crash(self, event: FaultEvent) -> None:
        self.broker.crash(preserve_persistent_sessions=event.params.get(
            "preserve_sessions", True))

    def _do_broker_restart(self, event: FaultEvent) -> None:
        self.broker.restart()
        restart_at = self.world.now
        self._last_broker_restart_at = restart_at
        self._recovery.clear()
        for _, node in sorted(self.testbed.nodes.items()):
            self._watch_recovery(node.manager.mqtt.client, restart_at)

    def _watch_recovery(self, client, restart_at: float) -> None:
        """Record the *first* reconnection after this restart — a later
        unrelated fault must not inflate the recovery delay."""
        def callback(connected: bool) -> None:
            if (connected
                    and self._last_broker_restart_at == restart_at
                    and client.client_id not in self._recovery):
                self._recovery[client.client_id] = self.world.now - restart_at
        client.on_connection_change(callback)

    def _do_server_crash(self, event: FaultEvent) -> None:
        self.server.crash()

    def _do_server_restart(self, event: FaultEvent) -> None:
        self.server.restart()

    def _do_shard_crash(self, event: FaultEvent) -> None:
        self._cluster().crash_shard(event.params["shard"])

    def _do_shard_restart(self, event: FaultEvent) -> None:
        self._cluster().restart_shard(event.params["shard"])

    def _do_shard_rebalance(self, event: FaultEvent) -> None:
        self._cluster().rebalance()

    def _do_shard_add(self, event: FaultEvent) -> None:
        self._cluster().add_shard(
            strategy=event.params.get("strategy", "snapshot"))

    def _do_shard_drain(self, event: FaultEvent) -> None:
        self._cluster().remove_shard(event.params["shard"])

    def _do_rolling_upgrade(self, event: FaultEvent) -> None:
        cluster = self._cluster()
        stagger = event.params.get("stagger", 0.0)
        if stagger <= 0:
            cluster.rolling_restart()
            return
        # Space the per-shard upgrades out so live traffic lands on a
        # cluster that is mid-upgrade — the window the zero-loss chaos
        # tests exercise.  Shards retired between scheduling and firing
        # are skipped; the final step accounts the completed sweep.
        delay = 0.0
        active = [index for index, shard_id in enumerate(cluster._order)
                  if not cluster._shards[shard_id].retired]
        for position, index in enumerate(active):
            last = position == len(active) - 1
            self.world.scheduler.schedule(
                delay, self._upgrade_one, (cluster, index, last))
            delay += stagger

    def _upgrade_one(self, step: tuple) -> None:
        cluster, index, last = step
        shard = cluster._shard_at(index)
        if not shard.retired:
            cluster.upgrade_shard(index)
            self.injected.append(
                (self.world.now, f"rolling_upgrade_step {shard.shard_id}"))
        if last:
            cluster.rolling_upgrades += 1

    def _cluster(self):
        if not hasattr(self.server, "crash_shard"):
            raise FaultTargetError(
                "shard faults need a sharded server cluster (testbed "
                "shards=N / repro cluster)")
        return self.server

    def _do_storage_write_error(self, event: FaultEvent) -> None:
        self._storage_medium().inject_write_failures(event.params["count"])

    def _do_storage_latency(self, event: FaultEvent) -> None:
        self._storage_medium().write_latency_s = event.params["seconds"]

    def _do_journal_torn_write(self, event: FaultEvent) -> None:
        """Power dies mid-append: half a frame lands on the platter and
        the server is down.  The torn frame is new, never-acked work,
        so recovery truncates it with zero acked loss — the sender's
        retry path redelivers it after the restart."""
        self._storage_medium().simulate_torn_append()
        self.server.crash()

    def _do_journal_corrupt_frame(self, event: FaultEvent) -> None:
        self._storage_medium().corrupt_frame()

    def _do_snapshot_corrupt(self, event: FaultEvent) -> None:
        self._storage_medium().corrupt_snapshot()

    def _storage_medium(self):
        durability = getattr(self.server, "durability", None)
        if durability is None:
            raise FaultTargetError(
                "storage faults need a durable server (testbed "
                "durability=True / repro chaos --durability)")
        return durability.medium

    def _do_plugin_stop(self, event: FaultEvent) -> None:
        self._plugin(event.target).stop()

    def _do_plugin_start(self, event: FaultEvent) -> None:
        self._plugin(event.target).start()

    # -- target resolution --------------------------------------------

    def _addresses(self, target: str | None) -> list[str]:
        """Resolve a symbolic target to concrete network addresses."""
        if target is None:
            raise FaultTargetError("fault event has no target")
        if target == "broker":
            return [self.broker.address]
        if target == "server":
            # A cluster exposes every shard's addresses (plus its own
            # ingress); the monolith pair is the degenerate case.
            fault_addresses = getattr(self.server, "fault_addresses", None)
            if fault_addresses is not None:
                return fault_addresses()
            return [self.server.address, self.server.mqtt.address]
        if target == "devices":
            addresses: list[str] = []
            for user_id in sorted(self.testbed.nodes):
                addresses.extend(self._device_addresses(user_id))
            return addresses
        if target.startswith("device:"):
            return self._device_addresses(target.split(":", 1)[1])
        return [target]  # a raw network address

    def _device_addresses(self, user_id: str) -> list[str]:
        node = self.testbed.nodes.get(user_id)
        if node is None:
            raise FaultTargetError(f"no deployed user {user_id!r}")
        return [node.phone.address, node.manager.mqtt.client.address]

    def _plugin(self, platform: str | None):
        for plugin in self.server.plugins():
            if plugin.platform == platform:
                return plugin
        raise FaultTargetError(f"no plug-in for platform {platform!r}")

    # -- reporting ----------------------------------------------------

    def report(self) -> ChaosReport:
        """Snapshot delivery/drop/recovery accounting for the run."""
        devices = [node.manager.health()
                   for _, node in sorted(self.testbed.nodes.items())]
        obs_doc = None
        plane = getattr(self.testbed, "slo", None)
        hub = self.world.component_or_none("obs")
        if hub is not None:
            depths = {f"outbox:{user_id}": len(node.manager.outbox)
                      for user_id, node in sorted(self.testbed.nodes.items())}
            obs_doc = hub.report(queue_depths=depths,
                                 network=self.network, slo=plane).to_dict()
        return ChaosReport(
            plan_name=", ".join(plan.name for plan in self.plans_applied)
            or "(none)",
            injected=list(self.injected),
            network={
                "messages_sent": self.network.messages_sent,
                "messages_delivered": self.network.messages_delivered,
                "messages_dropped": self.network.messages_dropped,
                "partition_drops": self.network.partition_drops,
                "loss_drops": self.network.loss_drops,
            },
            broker={
                "crashes": self.broker.crashes,
                "restarts": self.broker.restarts,
                "sessions_expired": self.broker.sessions_expired,
            },
            server=self.server.health(),
            devices=devices,
            recovery_delays=dict(self._recovery),
            obs=obs_doc,
            slo=plane.report() if plane is not None else None,
        )
