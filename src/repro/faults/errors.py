"""Fault-injection errors."""


class FaultError(Exception):
    """Base class for fault-injection errors."""


class FaultTargetError(FaultError):
    """A plan names a target the deployment does not have."""
