"""Fault plans: declarative, reproducible failure schedules.

A :class:`FaultPlan` is a list of timed fault events built with a
fluent API::

    plan = (FaultPlan("rough-day")
            .broker_restart(at=600.0, downtime=60.0)
            .partition("device:alice", start=900.0, duration=120.0)
            .packet_loss("devices", rate=0.05, start=0.0))

Plans carry no references to live objects — targets are symbolic
("broker", "server", "device:<user>", "devices", or a raw network
address) — so the same plan can be applied to any scenario, and a run
with the same seed and the same plan is bit-for-bit reproducible.
:class:`repro.faults.ChaosController` resolves the symbols and drives
the events through the world scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.latency import LatencyModel


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at: float
    kind: str
    target: str | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        detail = f" {self.target}" if self.target else ""
        extras = ", ".join(f"{key}={value}" for key, value
                           in sorted(self.params.items()))
        if extras:
            detail += f" ({extras})"
        return f"{self.kind}{detail}"


class FaultPlan:
    """An ordered schedule of fault injections."""

    def __init__(self, name: str = "custom"):
        self.name = name
        self._events: list[FaultEvent] = []
        #: SLO alert names this plan expects to fire during the run
        #: (asserted by the chaos CLI when an SLO plane is deployed).
        self._expected_alerts: list[str] = []
        #: Explicit recovery-counter expectations layered over the
        #: event-derived defaults (see :meth:`expected_recovery`).
        self._expected_recovery: dict[str, int] = {}

    # -- building -----------------------------------------------------

    def add(self, kind: str, at: float, target: str | None = None,
            **params: Any) -> "FaultPlan":
        if at < 0:
            raise ValueError(f"fault time must be >= 0, got {at}")
        self._events.append(FaultEvent(at=float(at), kind=kind,
                                       target=target, params=params))
        return self

    def partition(self, target: str, start: float,
                  duration: float) -> "FaultPlan":
        """Cut ``target`` off the network for ``duration`` seconds."""
        self.add("link_down", start, target)
        self.add("link_up", start + duration, target)
        return self

    def flap(self, target: str, start: float, cycles: int,
             down_for: float, up_for: float) -> "FaultPlan":
        """Repeated short partitions: patchy-coverage radio."""
        at = start
        for _ in range(cycles):
            self.partition(target, at, down_for)
            at += down_for + up_for
        return self

    def packet_loss(self, target: str, rate: float, start: float = 0.0,
                    duration: float | None = None) -> "FaultPlan":
        """Probabilistic loss on every link touching ``target``."""
        self.add("loss", start, target, rate=rate)
        if duration is not None:
            self.add("loss", start + duration, target, rate=0.0)
        return self

    def jitter(self, target: str, model: LatencyModel, start: float = 0.0,
               duration: float | None = None) -> "FaultPlan":
        """Extra random delay on messages towards ``target``."""
        self.add("jitter", start, target, model=model)
        if duration is not None:
            self.add("jitter", start + duration, target, model=None)
        return self

    def broker_restart(self, at: float, downtime: float,
                       preserve_sessions: bool = True) -> "FaultPlan":
        """Crash the broker at ``at``; bring it back after ``downtime``.

        ``preserve_sessions=False`` models a broker with no persistence
        store: it restarts amnesiac and clients must re-subscribe.
        """
        self.add("broker_crash", at, "broker",
                 preserve_sessions=preserve_sessions)
        self.add("broker_restart", at + downtime, "broker")
        return self

    def server_crash(self, at: float, downtime: float) -> "FaultPlan":
        """Kill the server process at ``at``; restart after ``downtime``.

        Both server endpoints partition (in-flight messages drop, QoS
        layers retry) and the volatile intake queue is wiped.  On
        restart a durable server recovers its database and dedup
        window from snapshot + journal replay; a non-durable one comes
        back amnesiac — the contrast the durability tests pin.
        """
        self.add("server_crash", at, "server")
        self.add("server_restart", at + downtime, "server")
        return self

    def shard_crash(self, at: float, shard: int,
                    rebalance_after: float | None = None) -> "FaultPlan":
        """Kill shard ``shard`` of a server cluster at ``at``.

        When ``rebalance_after`` is given, a ``shard_rebalance``
        follows that many seconds later: the dead shard is failed out
        of the ring, survivors inherit its devices via the broker's
        retained-registration replay, and its journal is replayed so
        acknowledged records migrate instead of dying with it.
        """
        self.add("shard_crash", at, "server", shard=shard)
        if rebalance_after is not None:
            self.shard_rebalance(at + rebalance_after)
        return self

    def shard_restart(self, at: float, shard: int) -> "FaultPlan":
        """Restart a crashed (not yet rebalanced-away) shard."""
        self.add("shard_restart", at, "server", shard=shard)
        return self

    def shard_rebalance(self, at: float) -> "FaultPlan":
        """Fail every crashed shard out of the ring and migrate its
        devices, documents and live streams to the survivors."""
        self.add("shard_rebalance", at, "server")
        return self

    def shard_add(self, at: float, strategy: str = "snapshot") -> "FaultPlan":
        """Scale the cluster out by one shard mid-run.

        ``strategy`` picks the bootstrap path for the joining shard's
        migrated documents: ``"snapshot"`` (bulk import + one
        checkpoint) or ``"replay"`` (per-document journaling).
        """
        self.add("shard_add", at, "server", strategy=strategy)
        return self

    def shard_drain(self, at: float, shard: int) -> "FaultPlan":
        """Scale in: drain healthy shard ``shard`` and retire it from
        the ring, handing its state off to the survivors."""
        self.add("shard_drain", at, "server", shard=shard)
        return self

    def rolling_upgrade(self, at: float,
                        stagger: float = 0.0) -> "FaultPlan":
        """Drain → restart → rejoin every shard in sequence.

        ``stagger=0`` upgrades the whole fleet at one instant (each
        shard still one at a time); a positive stagger spaces the
        per-shard upgrades that many seconds apart, so live traffic
        lands on a cluster that is mid-upgrade.
        """
        self.add("rolling_upgrade", at, "server", stagger=stagger)
        return self

    def storage_write_errors(self, at: float, count: int) -> "FaultPlan":
        """Make the next ``count`` journal appends fail (bad sectors,
        full disk).  The circuit breaker trips on consecutive failures
        and poison-retried records end up quarantined."""
        self.add("storage_write_error", at, "server", count=count)
        return self

    def storage_latency(self, at: float, seconds: float,
                        duration: float | None = None) -> "FaultPlan":
        """Slow every durable write by ``seconds`` (degraded disk).
        The drain pump paces itself by this, so intake backs up and
        the admission controller starts shedding."""
        self.add("storage_latency", at, "server", seconds=seconds)
        if duration is not None:
            self.add("storage_latency", at + duration, "server", seconds=0.0)
        return self

    def device_reboot(self, user_id: str, at: float,
                      downtime: float) -> "FaultPlan":
        """Reboot a phone: radio silent for ``downtime`` seconds."""
        self.add("device_down", at, f"device:{user_id}")
        self.add("device_up", at + downtime, f"device:{user_id}")
        return self

    def plugin_outage(self, platform: str, start: float,
                      duration: float) -> "FaultPlan":
        """An OSN plug-in stops capturing actions for a while."""
        self.add("plugin_stop", start, platform)
        self.add("plugin_start", start + duration, platform)
        return self

    def torn_write(self, at: float, downtime: float) -> "FaultPlan":
        """Tear the journal tail mid-append and crash the server in the
        same instant (the two are one physical event); restart after
        ``downtime``.  Recovery must truncate the torn frame with zero
        acknowledged loss."""
        self.add("journal_torn_write", at, "server")
        self.add("server_restart", at + downtime, "server")
        return self

    def corrupt_frame(self, at: float) -> "FaultPlan":
        """Bit rot in a mid-tail journal frame.  The next recovery must
        quarantine it, keep the longest valid prefix, and degrade
        health (acked data may be gone) — pair with a ``server_crash``
        so a recovery actually runs."""
        self.add("journal_corrupt_frame", at, "server")
        return self

    def corrupt_snapshot(self, at: float) -> "FaultPlan":
        """Bit rot in the checkpoint snapshot frame.  The next recovery
        must fall back to full-history replay (journal-as-history) or
        report the state unrecoverable."""
        self.add("snapshot_corrupt", at, "server")
        return self

    def expect_alert(self, name: str) -> "FaultPlan":
        """Declare that SLO alert ``name`` must fire during this plan."""
        if name not in self._expected_alerts:
            self._expected_alerts.append(name)
        return self

    @property
    def expected_alerts(self) -> tuple[str, ...]:
        return tuple(self._expected_alerts)

    def expect_recovery(self, **counters: int) -> "FaultPlan":
        """Override an expected recovery counter (``journal_frames_torn``,
        ``journal_frames_quarantined``, ``journal_snapshot_fallbacks``)
        when the defaults derived from the plan's events don't apply."""
        self._expected_recovery.update(counters)
        return self

    def expected_recovery(self) -> dict[str, int]:
        """Recovery counters a durable run of this plan must produce.

        Derived from the injected events — one torn frame per
        ``journal_torn_write``, one quarantined frame per
        ``journal_corrupt_frame``, one full-history fallback per
        ``snapshot_corrupt`` — with :meth:`expect_recovery` overrides
        on top.  The chaos CLI asserts actuals == expected on every
        durable run, so *undeclared* corruption (all-zero expectations)
        fails the run loudly.
        """
        expected = {
            "journal_frames_torn": sum(
                1 for event in self._events
                if event.kind == "journal_torn_write"),
            "journal_frames_quarantined": sum(
                1 for event in self._events
                if event.kind == "journal_corrupt_frame"),
            "journal_snapshot_fallbacks": sum(
                1 for event in self._events
                if event.kind == "snapshot_corrupt"),
        }
        expected.update(self._expected_recovery)
        return expected

    # -- reading ------------------------------------------------------

    @property
    def needs_durable_journal(self) -> bool:
        """True when the plan injects faults into the journal medium
        itself, so a run of it must deploy a durable server."""
        return any(event.kind in ("journal_torn_write",
                                  "journal_corrupt_frame",
                                  "snapshot_corrupt")
                   for event in self._events)

    def events(self) -> list[FaultEvent]:
        """Events sorted by time (stable: insertion order breaks ties)."""
        return sorted(self._events, key=lambda event: event.at)

    @property
    def is_empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.name!r} events={len(self._events)}>"
