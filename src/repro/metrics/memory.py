"""Memory profiling (DDMS stand-in): heap snapshots of Table 2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.phone import Smartphone


@dataclass(frozen=True)
class HeapSnapshot:
    """What DDMS reports for one app process."""

    heap_allowed_mb: float
    heap_allocated_mb: float
    objects: int


class MemoryProfiler:
    """Takes heap snapshots of a phone's app process."""

    @staticmethod
    def profile(phone: Smartphone) -> HeapSnapshot:
        heap = phone.heap
        return HeapSnapshot(
            heap_allowed_mb=round(heap.allowed_mb, 3),
            heap_allocated_mb=round(heap.allocated_mb, 3),
            objects=heap.object_count,
        )
