"""CPU profiling (TraceView stand-in): periodic utilisation samples."""

from __future__ import annotations

from repro.device.cpu import CpuModel
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World


class CpuProfiler:
    """Samples a CPU model's utilisation at a fixed period."""

    def __init__(self, world: World, cpu: CpuModel, sample_period_s: float = 1.0):
        self._world = world
        self._cpu = cpu
        self._period = sample_period_s
        self._task: PeriodicTask | None = None
        self.samples: list[float] = []

    def start(self) -> "CpuProfiler":
        self.samples.clear()
        self._task = self._world.scheduler.every(self._period, self._sample)
        return self

    def stop(self) -> float:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        return self.mean_pct()

    def mean_pct(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def max_pct(self) -> float:
        return max(self.samples, default=0.0)

    def _sample(self) -> None:
        self.samples.append(self._cpu.utilization_pct())
