"""Energy metering (PowerTutor stand-in).

"We measure energy consumption with the frequency of 1 second and
average the recorded values, in order to include the extra energy-tails
due to the wireless interfaces" (§5.3).  The meter samples the battery
at 1 Hz between ``start`` and ``stop`` and can split its delta by
(component, category) from the battery ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.battery import Battery, EnergyCategory
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World


@dataclass
class EnergySample:
    time: float
    consumed_mah: float


class EnergyMeter:
    """1 Hz battery sampling with ledger-based breakdowns."""

    def __init__(self, world: World, battery: Battery,
                 sample_period_s: float = 1.0):
        self._world = world
        self._battery = battery
        self._period = sample_period_s
        self._task: PeriodicTask | None = None
        self.samples: list[EnergySample] = []
        self._start_consumed: float | None = None
        self._start_ledger: dict | None = None
        self._stop_consumed: float | None = None
        self._stop_ledger: dict | None = None

    def start(self) -> "EnergyMeter":
        self.samples.clear()
        self._start_consumed = self._battery.consumed_mah
        self._start_ledger = self._battery.breakdown()
        self._stop_consumed = None
        self._stop_ledger = None
        self._task = self._world.scheduler.every(self._period, self._sample)
        return self

    def stop(self) -> float:
        """Stop sampling; returns the total mAh consumed while running."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._stop_consumed = self._battery.consumed_mah
        self._stop_ledger = self._battery.breakdown()
        return self.total_mah()

    def total_mah(self) -> float:
        if self._start_consumed is None:
            return 0.0
        end = (self._stop_consumed if self._stop_consumed is not None
               else self._battery.consumed_mah)
        return end - self._start_consumed

    def average_mah_per(self, interval_s: float, duration_s: float) -> float:
        """Average consumption per ``interval_s`` over ``duration_s``."""
        if duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {duration_s}")
        return self.total_mah() * interval_s / duration_s

    def category_mah(self, category: EnergyCategory,
                     component: str | None = None) -> float:
        """Delta for one ledger category (optionally one component)."""
        start = self._start_ledger or {}
        end = (self._stop_ledger if self._stop_ledger is not None
               else self._battery.breakdown())
        total = 0.0
        for key, amount in end.items():
            ledger_component, ledger_category = key
            if ledger_category != category:
                continue
            if component is not None and ledger_component != component:
                continue
            total += amount - start.get(key, 0.0)
        return total

    def _sample(self) -> None:
        self.samples.append(EnergySample(self._world.now,
                                         self._battery.consumed_mah))
