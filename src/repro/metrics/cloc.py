"""Source line counting (CLOC stand-in) for Tables 1 and 5.

Counts *source lines of code*: non-blank lines that are not pure
comments.  Docstrings count as code (they are string expressions),
matching how the repository's own numbers are reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class LineCount:
    """Aggregate counts over a set of files."""

    files: int
    code_lines: int
    comment_lines: int
    blank_lines: int

    def __add__(self, other: "LineCount") -> "LineCount":
        return LineCount(
            files=self.files + other.files,
            code_lines=self.code_lines + other.code_lines,
            comment_lines=self.comment_lines + other.comment_lines,
            blank_lines=self.blank_lines + other.blank_lines,
        )


EMPTY_COUNT = LineCount(0, 0, 0, 0)


def count_lines(path: Path | str) -> LineCount:
    """Count one source file."""
    text = Path(path).read_text(encoding="utf-8")
    code = comments = blanks = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            blanks += 1
        elif stripped.startswith("#"):
            comments += 1
        else:
            code += 1
    return LineCount(files=1, code_lines=code,
                     comment_lines=comments, blank_lines=blanks)


def count_tree(root: Path | str, suffixes: tuple[str, ...] = (".py",),
               exclude_names: tuple[str, ...] = ("__pycache__",)) -> LineCount:
    """Count every matching source file under ``root``."""
    root = Path(root)
    total = EMPTY_COUNT
    if root.is_file():
        return count_lines(root)
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.suffix not in suffixes:
            continue
        if any(part in exclude_names for part in path.parts):
            continue
        total = total + count_lines(path)
    return total
