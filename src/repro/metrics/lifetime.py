"""Battery lifetime projection.

The paper motivates careful duty cycling with the observation that
"continuous sensing of GPS ... can lead to a twenty-fold reduction in
the battery lifetime" [13].  This helper projects how long a battery
lasts under an observed drain rate, so configurations can be compared
in hours of lifetime rather than raw mAh.
"""

from __future__ import annotations

import math

from repro.device.battery import Battery


def projected_lifetime_hours(battery: Battery, observed_mah: float,
                             observed_duration_s: float,
                             baseline_mah_per_hour: float = 8.0) -> float:
    """Hours until empty, extrapolating the observed drain rate.

    ``baseline_mah_per_hour`` models everything outside the profiled
    app (screen, OS, standby radio) — the paper's per-app measurements
    sit on top of a phone that drains regardless.
    """
    if observed_duration_s <= 0:
        raise ValueError(f"duration must be > 0, got {observed_duration_s}")
    if observed_mah < 0:
        raise ValueError(f"observed drain must be >= 0, got {observed_mah}")
    if baseline_mah_per_hour < 0:
        raise ValueError(
            f"baseline must be >= 0, got {baseline_mah_per_hour}")
    app_rate = observed_mah * 3600.0 / observed_duration_s
    total_rate = app_rate + baseline_mah_per_hour
    if total_rate == 0:
        return math.inf
    return battery.capacity_mah / total_rate


def lifetime_reduction_factor(battery: Battery, idle_mah: float,
                              loaded_mah: float, duration_s: float,
                              baseline_mah_per_hour: float = 8.0) -> float:
    """How many times shorter the battery life gets under load.

    Compares two observations over the same window (e.g. no sensing vs
    continuous GPS); values above 1 mean the load shortens lifetime.
    """
    idle_lifetime = projected_lifetime_hours(
        battery, idle_mah, duration_s, baseline_mah_per_hour)
    loaded_lifetime = projected_lifetime_hours(
        battery, loaded_mah, duration_s, baseline_mah_per_hour)
    if loaded_lifetime == 0:
        return math.inf
    return idle_lifetime / loaded_lifetime
