"""Measurement tooling (the paper's §5.1 third-party tools).

PowerTutor → :class:`EnergyMeter`; DDMS → :class:`MemoryProfiler`;
TraceView → :class:`CpuProfiler`; CLOC → :func:`count_lines`;
plus a latency recorder for Table 3-style statistics.
"""

from repro.metrics.energy import EnergyMeter
from repro.metrics.cpu import CpuProfiler
from repro.metrics.memory import HeapSnapshot, MemoryProfiler
from repro.metrics.latency import LatencyStats
from repro.metrics.cloc import LineCount, count_lines, count_tree
from repro.metrics.lifetime import (
    lifetime_reduction_factor,
    projected_lifetime_hours,
)

__all__ = [
    "CpuProfiler",
    "EnergyMeter",
    "HeapSnapshot",
    "LatencyStats",
    "LineCount",
    "MemoryProfiler",
    "count_lines",
    "count_tree",
    "lifetime_reduction_factor",
    "projected_lifetime_hours",
]
