"""Latency statistics for Table 3-style reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyStats:
    """Mean / standard deviation / extremes of a delay sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "LatencyStats":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        mean = sum(values) / len(values)
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        return cls(
            count=len(values),
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
        )
