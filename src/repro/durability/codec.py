"""Durable wire format: canonical value encoding, CRC frames,
fingerprints.

The journal's :class:`~repro.durability.journal.StorageMedium` stores
*bytes*, not Python objects, so a journal entry survives exactly what a
real fsync'd log file would survive — and is damaged by exactly what
damages one (torn tails, flipped bits).  This module owns the format:

- **Canonical value encoding** (``encode_value``/``decode_value``): a
  tagged, length-prefixed binary encoding of the JSON-ish values the
  docstore holds, plus tuples and bytes.  It is *canonical*: the same
  value always encodes to the same bytes (dicts keep insertion order,
  ints are minimal big-endian, floats are raw IEEE-754), so a byte
  digest of an encoding is a usable state fingerprint.  It is *exact*:
  decode(encode(v)) reproduces types and order bit-for-bit — tuples
  stay tuples, which JSON would silently listify and thereby change
  replayed state.
- **Framing** (``frame``/``read_frame``): ``MAGIC | length | crc32 |
  body``.  ``read_frame`` never raises on bad bytes — it classifies
  them (:data:`FRAME_OK`, :data:`FRAME_TORN`, :data:`FRAME_CORRUPT`)
  so the recovery scan in :mod:`repro.durability.recovery` can decide
  policy per damage class.
- **Fingerprints** (``fingerprint``): blake2b over the canonical
  encoding — the divergence oracle ``repro replay --verify`` compares
  between a live store and an offline re-derivation.
"""

from __future__ import annotations

import struct
import zlib
from hashlib import blake2b
from typing import Any

from repro.durability.errors import CodecError

#: Frame marker: lets the scanner resync after damaged length fields.
MAGIC = b"\xd7j"
#: ``MAGIC | body length (u32 BE) | crc32(body) (u32 BE)``.
FRAME_HEADER = struct.Struct(">2sII")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

#: ``read_frame`` statuses.
FRAME_OK = "ok"
#: The buffer ends before the frame does (a crash mid-append).
FRAME_TORN = "torn"
#: Complete frame whose body fails its CRC, or a broken header.
FRAME_CORRUPT = "corrupt"


# -- canonical value encoding -----------------------------------------

def encode_value(value: Any, out: bytearray) -> None:
    """Append the canonical encoding of ``value`` to ``out``."""
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        body = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                              "big", signed=True)
        out += b"I"
        out += _U32.pack(len(body))
        out += body
    elif type(value) is float:
        out += b"f"
        out += _F64.pack(value)
    elif type(value) is str:
        body = value.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(body))
        out += body
    elif type(value) is bytes:
        out += b"b"
        out += _U32.pack(len(value))
        out += value
    elif type(value) is list:
        out += b"l"
        out += _U32.pack(len(value))
        # Inlined str case: container elements are overwhelmingly
        # strings (journal batch columns, document keys), and the
        # recursive call per element dominates their encode cost.
        for item in value:
            if type(item) is str:
                body = item.encode("utf-8")
                out += b"s"
                out += _U32.pack(len(body))
                out += body
            else:
                encode_value(item, out)
    elif type(value) is tuple:
        out += b"t"
        out += _U32.pack(len(value))
        for item in value:
            if type(item) is str:
                body = item.encode("utf-8")
                out += b"s"
                out += _U32.pack(len(body))
                out += body
            else:
                encode_value(item, out)
    elif type(value) is dict:
        out += b"d"
        out += _U32.pack(len(value))
        for key, item in value.items():
            if type(key) is str:
                body = key.encode("utf-8")
                out += b"s"
                out += _U32.pack(len(body))
                out += body
            else:
                encode_value(key, out)
            encode_value(item, out)
    else:
        raise CodecError(
            f"cannot durably encode {type(value).__name__}: {value!r}")


def dumps(value: Any) -> bytes:
    """Canonical encoding of ``value`` as bytes."""
    out = bytearray()
    encode_value(value, out)
    return bytes(out)


def decode_value(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode one value at ``offset``; return ``(value, next_offset)``."""
    try:
        tag = data[offset:offset + 1]
        offset += 1
        if tag == b"N":
            return None, offset
        if tag == b"T":
            return True, offset
        if tag == b"F":
            return False, offset
        if tag == b"I":
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            body = data[offset:offset + length]
            if len(body) != length:
                raise CodecError("truncated int")
            return int.from_bytes(body, "big", signed=True), offset + length
        if tag == b"f":
            (value,) = _F64.unpack_from(data, offset)
            return value, offset + 8
        if tag == b"s":
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            body = data[offset:offset + length]
            if len(body) != length:
                raise CodecError("truncated str")
            return body.decode("utf-8"), offset + length
        if tag == b"b":
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            body = data[offset:offset + length]
            if len(body) != length:
                raise CodecError("truncated bytes")
            return bytes(body), offset + length
        if tag in (b"l", b"t"):
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = decode_value(data, offset)
                items.append(item)
            return (tuple(items) if tag == b"t" else items), offset
        if tag == b"d":
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            doc: dict[Any, Any] = {}
            for _ in range(count):
                key, offset = decode_value(data, offset)
                item, offset = decode_value(data, offset)
                doc[key] = item
            return doc, offset
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed encoding at offset {offset}: "
                         f"{exc}") from exc
    raise CodecError(f"unknown type tag {tag!r} at offset {offset - 1}")


def loads(data: bytes) -> Any:
    """Decode one canonical value; the bytes must contain exactly one."""
    value, end = decode_value(data, 0)
    if end != len(data):
        raise CodecError(
            f"{len(data) - end} trailing bytes after decoded value")
    return value


# -- framing ----------------------------------------------------------

def frame(body: bytes) -> bytes:
    """Wrap ``body`` as ``MAGIC | length | crc32 | body``."""
    return FRAME_HEADER.pack(MAGIC, len(body), zlib.crc32(body)) + body


def read_frame(data: bytes, offset: int) -> tuple[str, bytes, int]:
    """Classify and read the frame at ``offset``.

    Returns ``(status, body, next_offset)``.  ``FRAME_OK`` yields the
    verified body and the offset just past the frame.  ``FRAME_TORN``
    means the buffer ends mid-frame (body is the partial bytes;
    next_offset is the buffer end).  ``FRAME_CORRUPT`` means the frame
    is complete but fails its CRC or has a broken header; next_offset
    skips the frame when the header was parseable, else the buffer end.
    """
    remaining = len(data) - offset
    if remaining < FRAME_HEADER.size:
        return FRAME_TORN, bytes(data[offset:]), len(data)
    magic, length, crc = FRAME_HEADER.unpack_from(data, offset)
    body_start = offset + FRAME_HEADER.size
    if magic != MAGIC:
        return FRAME_CORRUPT, b"", len(data)
    if len(data) - body_start < length:
        return FRAME_TORN, bytes(data[body_start:]), len(data)
    body = bytes(data[body_start:body_start + length])
    if zlib.crc32(body) != crc:
        return FRAME_CORRUPT, body, body_start + length
    return FRAME_OK, body, body_start + length


# -- entries and snapshots --------------------------------------------

def encode_entry(entry) -> bytes:
    """One :class:`JournalEntry` as a durable frame."""
    return frame(dumps(entry.to_dict()))


def decode_entry(body: bytes):
    """Rebuild a :class:`JournalEntry` from a verified frame body."""
    from repro.durability.journal import JournalEntry
    return JournalEntry.from_dict(loads(body))


def encode_snapshot(state: dict[str, Any]) -> bytes:
    """One checkpoint state dict as a durable frame."""
    return frame(dumps(state))


def decode_snapshot(body: bytes) -> dict[str, Any]:
    return loads(body)


# -- fingerprints -----------------------------------------------------

def fingerprint(value: Any) -> str:
    """Canonical digest of ``value`` — equal iff the values are equal
    including types, dict insertion order and document order."""
    return blake2b(dumps(value), digest_size=16).hexdigest()


def fingerprint_store(store) -> str:
    """The divergence-oracle digest of a document store's full state."""
    return fingerprint(store.snapshot())
