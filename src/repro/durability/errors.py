"""Durability errors."""

from repro.core.common.errors import MiddlewareError


class DurabilityError(MiddlewareError):
    """Base class for durability-subsystem errors."""


class StorageWriteError(DurabilityError):
    """A write to the durable medium failed (injected or real)."""
