"""Durability errors."""

from repro.core.common.errors import MiddlewareError


class DurabilityError(MiddlewareError):
    """Base class for durability-subsystem errors."""


class StorageWriteError(DurabilityError):
    """A write to the durable medium failed (injected or real)."""


class CodecError(DurabilityError):
    """A value cannot be durably encoded, or durable bytes cannot be
    decoded back into a value."""


class CorruptFrameError(DurabilityError):
    """A journal or snapshot frame failed its integrity check."""


class SnapshotCorruptError(CorruptFrameError):
    """The checkpoint snapshot frame failed its integrity check."""
