"""The server durability controller.

Binds the durable-ingest machinery to a
:class:`~repro.core.server.manager.ServerSenSocialManager`:

- **intake** — ``submit()`` validates a record, short-circuits
  duplicates against the dedup window, and admits it to the bounded
  intake queue (shedding lowest-priority continuous records first);
- **drain** — a self-rescheduling pump applies one record per tick
  through the write-ahead journal, paced by the storage medium's
  write latency and gated by the circuit breaker;
- **crash/restart** — ``on_crash()`` wipes the volatile queue (those
  records are unacked and will be retransmitted); ``recover()``
  rebuilds the journaled store from the medium's snapshot + journal
  tail and returns the dedup ids to restore, so post-restart ingest
  stays exactly-once.

The controller never touches an RNG stream and schedules work only
while the durable path is active, so a run with durability disabled
(no controller) is bit-identical to one on a build without this
module.  It also never imports ``repro.core.server`` — the manager
owns the typed objects (``ServerDatabase``, ``RecordDeduper``) and
hands itself in via :meth:`bind`.
"""

from __future__ import annotations

from typing import Any

from repro.docstore.journaled import JournaledDocumentStore
from repro.durability.admission import AdmissionController, IntakeItem
from repro.durability.breaker import CircuitBreaker
from repro.durability.config import DurabilityConfig
from repro.durability.errors import StorageWriteError
from repro.durability.fair import FairAdmissionController
from repro.durability.journal import StorageMedium, WriteAheadJournal, replay
from repro.durability.quarantine import DeadLetterQuarantine
from repro.durability.recovery import (
    BackfillCheckpoint,
    JournalBackfill,
    run_recovery_scan,
)
from repro.obs.health import STATUS_DEGRADED, STATUS_OK, Healthcheck

#: Lazily built wire-value sets for the batch poison screen (module
#: import stays free of ``repro.core`` just like the singleton path).
_WIRE_ENUM_VALUES: tuple[frozenset, frozenset] | None = None


def _wire_enum_values() -> tuple[frozenset, frozenset]:
    global _WIRE_ENUM_VALUES
    if _WIRE_ENUM_VALUES is None:
        from repro.core.common.granularity import Granularity
        from repro.core.common.modality import ModalityType
        _WIRE_ENUM_VALUES = (
            frozenset(modality.value for modality in ModalityType),
            frozenset(granularity.value for granularity in Granularity))
    return _WIRE_ENUM_VALUES


class ServerDurability:
    """Write-ahead journaling + overload protection for one server."""

    def __init__(self, world, config: DurabilityConfig | None = None,
                 medium: StorageMedium | None = None):
        self.world = world
        self.config = config if config is not None else DurabilityConfig()
        self.medium = medium if medium is not None else StorageMedium()
        self.server: Any = None
        self.journal: WriteAheadJournal | None = None
        self.store: JournaledDocumentStore | None = None
        if self.config.fair_admission:
            self.admission = FairAdmissionController(
                self.config.intake_capacity,
                high_watermark=self.config.high_watermark,
                low_watermark=self.config.low_watermark,
                weights=dict(self.config.fair_weights))
        else:
            self.admission = AdmissionController(
                self.config.intake_capacity,
                high_watermark=self.config.high_watermark,
                low_watermark=self.config.low_watermark)
        self.breaker = CircuitBreaker(self.config.breaker_trip_after,
                                      self.config.breaker_reset_s)
        self.quarantine = DeadLetterQuarantine(self.config.quarantine_capacity)
        self.medium.retain_history = self.config.retain_history
        self.medium.observer = self._observe_medium
        self.records_shed = 0
        self.records_quarantined = 0
        self.pending_duplicates = 0
        self.crash_wiped = 0
        self.replayed_entries = 0
        self.recoveries = 0
        #: Corruption accounting, aggregated across recoveries.
        self.frames_quarantined = 0
        self.frames_torn = 0
        self.frames_discarded = 0
        self.bytes_truncated = 0
        self.snapshot_fallbacks = 0
        self.snapshot_unrecoverable = 0
        #: Sticky: a recovery scan found acked-loss damage (a
        #: quarantined frame or an unrecoverable snapshot).  Health
        #: stays degraded — this store diverged from what it acked.
        self.corruption_detected = False
        #: ``RecoveryScan.to_dict()`` + replay outcome of the last
        #: recovery, for the chaos report's recovery section.
        self.last_recovery: dict[str, Any] | None = None
        #: Replay failure taxonomy across recoveries (op/collection/
        #: error per entry whose apply failed).
        self.replay_failures: list[dict[str, Any]] = []
        #: Bumped on every crash; a drain step scheduled before the
        #: crash sees a stale epoch and dies instead of running twice.
        self._epoch = 0
        self._pump_active = False

    # -- wiring -------------------------------------------------------

    def bind(self, server) -> None:
        """Attach to the server manager this controller protects."""
        self.server = server

    def build_store(self) -> JournaledDocumentStore:
        """The journaled store the server database must be built on."""
        self.journal = WriteAheadJournal(
            self.medium, self.config.checkpoint_interval,
            state_provider=self._snapshot_state)
        self.store = JournaledDocumentStore(self.journal)
        return self.store

    def _snapshot_state(self) -> dict[str, Any]:
        state: dict[str, Any] = {"store": self.store.snapshot()}
        if self.server is not None:
            state["dedup"] = self.server.dedup.snapshot()
        return state

    @property
    def _obs(self):
        return self.server.obs if self.server is not None else None

    def _observe_medium(self, name: str, amount: int) -> None:
        """Medium-level counter callback → Telemetry (when wired)."""
        obs = self._obs
        if obs is not None:
            obs.telemetry.counter(name).inc(amount)

    # -- intake -------------------------------------------------------

    def submit(self, payload: dict, *, reply_to: str | None,
               sent_at: float | None, trace, record_id: str | None) -> None:
        """Admit one arriving stream-data payload to the durable path."""
        from repro.core.common.records import StreamRecord

        server = self.server
        obs = self._obs
        now = self.world.now
        if obs is not None:
            obs.tracer.span(trace, "transport",
                            start=now if sent_at is None else sent_at)
        if record_id is not None and record_id in server.dedup:
            # Applied (or terminally disposed) before: re-ack so the
            # sender stops retrying; idempotent ingest absorbs it.
            server.dedup.seen(record_id)
            server.records_duplicate += 1
            server._send_ack(record_id, reply_to)
            if obs is not None:
                obs.tracer.event(trace, "duplicate_ingest",
                                 record_id=record_id)
                obs.telemetry.counter("records_duplicate").inc()
            return
        if record_id is not None and self.admission.pending(record_id):
            # A retransmission of a record still waiting in the intake
            # queue: not yet durable, so no ack — stay silent and let
            # the sender keep its retry timer running.
            self.pending_duplicates += 1
            if obs is not None:
                obs.tracer.event(trace, "duplicate_pending",
                                 record_id=record_id)
            return
        try:
            record = StreamRecord.from_dict(payload)
        except Exception:
            # Poison payload: quarantine instead of wedging the queue.
            self._quarantine_payload(record_id, payload, reply_to, trace,
                                     "invalid")
            return
        item = IntakeItem(
            record_id=record_id, payload=payload, record=record,
            reply_to=reply_to, sent_at=sent_at, trace=trace,
            priority=1 if record.osn_action else 0, enqueued_at=now)
        victims = self.admission.admit(item)
        if obs is not None:
            obs.tracer.span(trace, "admission", start=now,
                            depth=len(self.admission))
            obs.telemetry.gauge("intake_depth").set(len(self.admission))
        for victim in victims:
            self._shed(victim)
        self._ensure_pump()

    def submit_batch(self, batch, *, reply_to: str | None,
                     sent_at: float | None) -> None:
        """Admit one arriving batch envelope to the durable path.

        Members partition exactly as N :meth:`submit` calls would:
        already-seen ids re-ack (one coalesced ack envelope), ids still
        pending in intake stay silent, poison members quarantine
        individually, and the fresh remainder enters the queue as ONE
        intake item carrying the (sub-)batch — admission, journaling
        and the eventual ack all amortize across it.  A mixed batch
        takes the max member priority, so an OSN-triggered member
        shields its batch from watermark shedding just as it would
        shield itself.
        """
        server = self.server
        obs = self._obs
        now = self.world.now
        record_ids = batch.record_ids
        traces: list[Any] | None = None
        if obs is not None:
            from repro.obs.trace import TraceContext
            traces = [TraceContext.from_dict(trace) if trace is not None
                      else None for trace in batch.traces]
            started = now if sent_at is None else sent_at
            for trace in traces:
                obs.tracer.span(trace, "transport", start=started)
            obs.telemetry.histogram(
                "batch_size", stage="admission").observe(len(record_ids))
        dedup = server.dedup
        pending = self.admission.pending
        duplicate_ids = []
        fresh: list[int] = []
        for index, record_id in enumerate(record_ids):
            if record_id is not None and record_id in dedup:
                dedup.seen(record_id)
                server.records_duplicate += 1
                duplicate_ids.append(record_id)
                if obs is not None:
                    obs.tracer.event(traces[index], "duplicate_ingest",
                                     record_id=record_id)
                    obs.telemetry.counter("records_duplicate").inc()
                continue
            if record_id is not None and pending(record_id):
                self.pending_duplicates += 1
                if obs is not None:
                    obs.tracer.event(traces[index], "duplicate_pending",
                                     record_id=record_id)
                continue
            fresh.append(index)
        if duplicate_ids:
            server._send_batch_ack(duplicate_ids, reply_to)
        if not fresh:
            return
        # Poison screen: the singleton path learns this from
        # ``StreamRecord.from_dict`` raising; a batch carries the same
        # fields column-wise, so validate the enum columns directly
        # instead of building N record objects.
        valid_modalities, valid_granularities = _wire_enum_values()
        admitted: list[int] = []
        for index in fresh:
            if (batch.modalities[index] in valid_modalities
                    and batch.granularities[index] in valid_granularities):
                admitted.append(index)
                continue
            document = batch.select([index]).store_documents()[0]
            if record_ids[index] is not None:
                document["record_id"] = record_ids[index]
            self._quarantine_payload(
                record_ids[index], document, reply_to,
                traces[index] if traces is not None else None, "invalid")
        if not admitted:
            return
        sub = batch if len(admitted) == len(record_ids) \
            else batch.select(admitted)
        priority = 1 if any(action is not None
                            for action in sub.osn_actions) else 0
        item = IntakeItem(
            record_id=sub.record_ids[0],
            payload={"device_id": sub.device_id},
            record=None, reply_to=reply_to, sent_at=sent_at, trace=None,
            priority=priority, enqueued_at=now, extras={"batch": sub})
        victims = self.admission.admit(item)
        if obs is not None:
            depth = len(self.admission)
            for index in admitted:
                obs.tracer.span(traces[index], "admission",
                                start=now, depth=depth)
            obs.telemetry.gauge("intake_depth").set(depth)
        for victim in victims:
            self._shed(victim)
        self._ensure_pump()

    # -- drain pump ---------------------------------------------------

    def _ensure_pump(self) -> None:
        if self._pump_active or not len(self.admission):
            return
        self._pump_active = True
        delay = self.config.drain_interval_s + self.medium.write_latency_s
        self.world.scheduler.schedule(delay, self._drain_step, self._epoch)

    def _drain_step(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # scheduled before a crash; the restart superseded it
        self._pump_active = False
        now = self.world.now
        if not len(self.admission):
            return
        if not self.breaker.allow(now):
            self._ensure_pump()  # keep polling until the breaker half-opens
            return
        item = self.admission.pop()
        try:
            self.server._apply_intake(item)
        except StorageWriteError:
            self.breaker.record_failure(now)
            item.attempts += 1
            if item.attempts >= self.config.max_apply_attempts:
                self._quarantine_item(item, "repeated_write_failure")
            else:
                self.admission.requeue(item)
        else:
            self.breaker.record_success()
        self._ensure_pump()

    # -- drops --------------------------------------------------------

    def _shed(self, victim: IntakeItem) -> None:
        """Load-shed one queued record: ack (a deliberate drop must not
        be retried), remember its id so a late retransmission is not
        re-admitted, and attribute the drop."""
        reason = "breaker_open" if self.breaker.is_open else "shed"
        server = self.server
        obs = self._obs
        batch = victim.extras.get("batch")
        if batch is not None:
            # A shed batch sheds every member: remember + ack them all
            # (one coalesced envelope) and attribute each drop.
            self.records_shed += len(batch)
            for record_id in batch.record_ids:
                if record_id is not None:
                    server.dedup.remember(record_id)
            server._send_batch_ack(batch.record_ids, victim.reply_to)
            if obs is not None:
                for trace in self._batch_traces(batch):
                    obs.tracer.mark_dropped(trace, "admission", reason)
                obs.telemetry.counter("records_dropped", stage="admission",
                                      reason=reason).inc(len(batch))
            return
        self.records_shed += 1
        if victim.record_id is not None:
            server.dedup.remember(victim.record_id)
        server._send_ack(victim.record_id, victim.reply_to)
        if obs is not None:
            obs.tracer.mark_dropped(victim.trace, "admission", reason)
            obs.telemetry.counter("records_dropped", stage="admission",
                                  reason=reason).inc()

    def _batch_traces(self, batch):
        from repro.obs.trace import TraceContext
        return [TraceContext.from_dict(trace) if trace is not None else None
                for trace in batch.traces]

    def _quarantine_item(self, item: IntakeItem, reason: str) -> None:
        batch = item.extras.get("batch")
        if batch is None:
            self._quarantine_payload(item.record_id, item.payload,
                                     item.reply_to, item.trace, reason)
            return
        # A poison batch dead-letters per member (each quarantine entry
        # must be individually inspectable/replayable) but acks once.
        server = self.server
        record_ids = batch.record_ids
        now = self.world.now
        for index, document in enumerate(batch.store_documents()):
            record_id = record_ids[index]
            if record_id is not None:
                document["record_id"] = record_id
                server.dedup.remember(record_id)
            self.quarantine.put(record_id=record_id, reason=reason,
                                at=now, payload=document)
            self.records_quarantined += 1
        server._send_batch_ack(record_ids, item.reply_to)
        obs = self._obs
        if obs is not None:
            for trace in self._batch_traces(batch):
                obs.tracer.mark_dropped(trace, "ingest", "quarantined")
            obs.telemetry.counter("records_dropped", stage="ingest",
                                  reason="quarantined",
                                  quarantine_reason=reason).inc(
                                      len(record_ids))

    def _quarantine_payload(self, record_id: str | None, payload: dict,
                            reply_to: str | None, trace, reason: str) -> None:
        self.quarantine.put(record_id=record_id, reason=reason,
                            at=self.world.now, payload=payload)
        self.records_quarantined += 1
        server = self.server
        if record_id is not None:
            server.dedup.remember(record_id)
        server._send_ack(record_id, reply_to)
        obs = self._obs
        if obs is not None:
            obs.tracer.mark_dropped(trace, "ingest", "quarantined")
            obs.telemetry.counter("records_dropped", stage="ingest",
                                  reason="quarantined",
                                  quarantine_reason=reason).inc()

    # -- crash / recovery ---------------------------------------------

    def on_crash(self) -> None:
        """The server process died: volatile intake is gone.  Wiped
        records are unacked — their traces stay in flight and the
        mobile outboxes retransmit them after the restart."""
        self._epoch += 1
        self._pump_active = False
        wiped = self.admission.wipe()
        self.crash_wiped += len(wiped)

    def recover(self) -> tuple[JournaledDocumentStore, list[str]]:
        """Rebuild the store from snapshot + journal replay.

        The medium is scanned and classified first
        (:func:`~repro.durability.recovery.run_recovery_scan`): a torn
        tail is truncated (never acked, zero acked loss), a mid-log CRC
        mismatch quarantines the frame and recovers the longest valid
        prefix while flagging sticky-degraded health, and a rotten
        snapshot falls back to full-history replay when the log still
        reaches back to genesis.

        Returns the recovered store and the record ids (snapshot dedup
        state, then replayed ingests in journal order) the manager must
        feed back into a fresh dedup window.
        """
        store = self.build_store()  # fresh journal bound to the medium
        journal = self.journal
        dedup_ids: list[str] = []
        scan = run_recovery_scan(self.medium, repair=True)
        with journal.suspended():
            if scan.snapshot is not None:
                store.restore(scan.snapshot["store"])
                dedup_ids.extend(scan.snapshot.get("dedup", []))
            result = replay(store, scan.entries)
        dedup_ids.extend(result.dedup_ids)
        self.replayed_entries += result.applied
        self.recoveries += 1
        self.frames_quarantined += scan.quarantined_frames
        self.frames_torn += scan.torn_frames
        self.frames_discarded += scan.discarded_frames
        self.bytes_truncated += scan.truncated_bytes
        self.snapshot_fallbacks += int(scan.used_full_history)
        self.snapshot_unrecoverable += int(scan.snapshot_unrecoverable)
        if not scan.clean:
            self.corruption_detected = True
        self.replay_failures.extend(result.failures)
        self.last_recovery = {
            "scan": scan.to_dict(),
            "replayed": result.applied,
            "replay_failed": result.failed,
            "replay_failures": list(result.failures),
        }
        obs = self._obs
        if obs is not None:
            from repro.obs.trace import TraceContext
            for record_id, trace_doc in result.traces:
                obs.tracer.span(TraceContext.from_dict(trace_doc), "replay",
                                record_id=record_id)
            obs.telemetry.counter("journal_entries_replayed").inc(
                result.applied)
            obs.telemetry.counter("recovery_scans").inc()
            for name, amount in (
                    ("journal_frames_quarantined", scan.quarantined_frames),
                    ("journal_frames_torn", scan.torn_frames),
                    ("journal_frames_discarded", scan.discarded_frames),
                    ("journal_bytes_truncated", scan.truncated_bytes),
                    ("journal_snapshot_fallbacks",
                     int(scan.used_full_history)),
                    ("journal_replay_failures", result.failed)):
                if amount:
                    obs.telemetry.counter(name).inc(amount)
        return store, dedup_ids

    def finish_recovery(self) -> None:
        """Fold the replayed tail into a fresh checkpoint so the next
        crash does not replay it again.  Called after the manager has
        rebuilt its database and dedup window on the recovered store."""
        self.journal.checkpoint()

    def import_state(self, documents: dict[str, list[dict]]) -> int:
        """Snapshot-bootstrap: bulk-load a migrated state slice.

        A shard joining the cluster inherits documents from the shards
        that owned them before the ring change.  Loading them through
        the journal would append one entry per document; instead the
        writes run with the journal suspended and the whole imported
        state is folded into a single checkpoint — the new shard's
        journal cost is one snapshot write regardless of slice size
        (the trade-off ``docs/SCALING.md`` quantifies against
        per-document retained replay).

        The caller must seed the server's dedup window *before* calling
        this: the checkpoint persists the dedup snapshot alongside the
        store, so a crash right after the import recovers both.

        Returns the number of documents imported.
        """
        imported = 0
        with self.journal.suspended():
            for collection_name, docs in documents.items():
                collection = self.store[collection_name]
                for doc in docs:
                    collection.insert_one(
                        {key: value for key, value in doc.items()
                         if key != "_id"})
                    imported += 1
        # The bulk load bypassed the journal: the log can no longer
        # reproduce state from seq 0, so a rotten snapshot has no
        # full-history fallback on this shard.
        self.medium.mark_history_incomplete()
        self.journal.checkpoint()
        return imported

    # -- replay oracle / backfill -------------------------------------

    def replay_store(self):
        """Re-derive a store offline from the medium, without touching
        the live one: a read-only recovery scan (no torn-tail repair)
        replayed onto a fresh plain :class:`DocumentStore`.

        Returns ``(store, scan, replay_result)``.
        """
        from repro.docstore.store import DocumentStore

        scan = run_recovery_scan(self.medium, repair=False)
        name = self.store.name if self.store is not None else "sensocial"
        store = DocumentStore(name)
        if scan.snapshot is not None:
            store.restore(scan.snapshot["store"])
        result = replay(store, scan.entries)
        return store, scan, result

    def verify_replay(self) -> dict[str, Any]:
        """The divergence oracle: fingerprint the live store against an
        offline snapshot+journal re-derivation.

        A mismatch means the durable history does not reproduce the
        state the server is serving — a dirty write the journal
        absorbed (``lost_appends``), unrepaired damage, or a bug.
        ``repro replay --verify`` exits nonzero on it.
        """
        from repro.durability.codec import fingerprint_store

        replayed, scan, result = self.replay_store()
        live = fingerprint_store(self.store)
        derived = fingerprint_store(replayed)
        return {
            "match": live == derived,
            "live_fingerprint": live,
            "replayed_fingerprint": derived,
            "lost_appends": self.journal.lost_appends if self.journal else 0,
            "replayed": result.applied,
            "replay_failed": result.failed,
            "scan": scan.to_dict(),
        }

    def backfill(self, publish, *, ops=("ingest",),
                 collection: str | None = None, start_seq: int = 0,
                 end_seq: int | None = None, limit: int | None = None,
                 checkpoint: BackfillCheckpoint | None = None,
                 ) -> BackfillCheckpoint:
        """Re-publish a bounded window of retained journal history
        through ``publish`` (a newly registered stream/filter adapter);
        see :class:`~repro.durability.recovery.JournalBackfill`."""
        backfill = JournalBackfill(self.medium, ops=ops,
                                   collection=collection)
        return backfill.run(publish, start_seq=start_seq, end_seq=end_seq,
                            limit=limit, checkpoint=checkpoint)

    def bootstrap_work(self) -> dict[str, int]:
        """Deterministic cost counters of this shard's journal medium
        (appends + checkpoints), used by the elasticity benchmark to
        compare snapshot bootstrap against retained replay."""
        return {"journal_appends": self.medium.appends,
                "checkpoints": self.medium.checkpoints}

    # -- observability ------------------------------------------------

    def health(self) -> dict:
        degraded = (self.breaker.is_open or len(self.admission) > 0
                    or len(self.quarantine) > 0
                    or self.corruption_detected)
        extra: dict[str, Any] = {}
        if isinstance(self.admission, FairAdmissionController):
            extra["fair_admission"] = True
            extra["fair_sources"] = len(self.admission.fairness_report())
        if self.last_recovery is not None:
            extra["recovery"] = self.last_recovery
        if self.corruption_detected:
            extra["corruption_detected"] = True
        return Healthcheck.build(
            status=STATUS_DEGRADED if degraded else STATUS_OK,
            detail=(f"durability: breaker {self.breaker.state}, "
                    f"intake {len(self.admission)}/{self.config.intake_capacity}, "
                    f"journal lag {self.journal.lag if self.journal else 0}"),
            counters={
                "intake_depth": len(self.admission),
                "intake_max_depth": self.admission.max_depth,
                "records_shed": self.records_shed,
                "records_quarantined": self.records_quarantined,
                "pending_duplicates": self.pending_duplicates,
                "crash_wiped": self.crash_wiped,
                "journal_lag": self.journal.lag if self.journal else 0,
                "journal_appends": self.medium.appends,
                "journal_append_failures": self.medium.append_failures,
                "journal_lost_appends":
                    self.journal.lost_appends if self.journal else 0,
                "checkpoints": self.medium.checkpoints,
                "replayed_entries": self.replayed_entries,
                "recoveries": self.recoveries,
                "journal_frames_quarantined": self.frames_quarantined,
                "journal_frames_torn": self.frames_torn,
                "journal_frames_discarded": self.frames_discarded,
                "journal_bytes_truncated": self.bytes_truncated,
                "journal_snapshot_fallbacks": self.snapshot_fallbacks,
                "journal_snapshot_unrecoverable": self.snapshot_unrecoverable,
                "journal_truncated_entries": self.medium.truncated_entries,
                "replay_failures": len(self.replay_failures),
                "breaker_trips": self.breaker.trips,
                **extra,
            },
            breaker=self.breaker.to_dict(),
            quarantine_reasons=self.quarantine.reasons(),
        )
