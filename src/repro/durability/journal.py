"""Write-ahead journal over a simulated durable medium.

Every mutating docstore operation appends a compact, replayable
:class:`JournalEntry` *before* applying in memory (write-ahead), so a
server crash loses at most work that was never acknowledged.  The
journal periodically folds itself into a checkpoint: the medium keeps
one full-state snapshot plus a *tail pointer* into its byte log, and
recovery is ``restore(snapshot)`` followed by :func:`replay` of the
tail.

Entries and snapshots are durable **bytes**, not shared object
references: each append encodes the entry through
:mod:`repro.durability.codec` into a length-prefixed, CRC-checksummed
frame on a contiguous byte log.  That makes the medium honest about
what a real device delivers — a crash mid-write leaves a *torn tail*,
bit rot leaves a frame whose CRC no longer matches — and it makes the
log a verifiable history: by default a checkpoint only advances the
tail pointer (``retain_history``), so the full frame sequence from
genesis backs ``repro replay``, backfill, and the snapshot-corruption
fallback in :mod:`repro.durability.recovery`.

Invariants:

- **Append-before-apply** — an entry is on the medium before the
  in-memory structures change; a crash between the two replays the
  entry and converges to the post-apply state.
- **Outermost-only journaling** — compound operations (an upsert that
  inserts, the server's composite ``ingest``) journal one entry; the
  nested ops they perform are suppressed by a depth guard so replay
  never double-applies.
- **Checkpoint-after-apply** — checkpoints are only taken after the
  current operation has fully applied, so a snapshot can never miss
  the effect of an entry the truncation discards.
- **Replay idempotence from the snapshot** — replaying the tail onto
  the snapshot state reproduces the pre-crash state exactly; an entry
  whose original application failed fails identically on replay (the
  store raises the same error from the same state) and is skipped.
- **Capture-at-append** — the encode happens inside ``append``, so a
  caller mutating its payload dict afterwards cannot retroactively
  change what was journaled.

The medium is deliberately simple — an in-process byte log standing in
for an fsync'd file — but it is the *fault point*: the chaos
controller injects write failures, latency, torn writes and flipped
bits here, which is what the circuit breaker and the recovery scan
react to.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.docstore.errors import DocStoreError
from repro.durability import codec
from repro.durability.codec import (
    FRAME_CORRUPT,
    FRAME_OK,
    FRAME_TORN,
    read_frame,
)
from repro.durability.errors import (
    DurabilityError,
    SnapshotCorruptError,
    StorageWriteError,
)


@dataclass(frozen=True)
class JournalEntry:
    """One replayable mutation: ``op`` on ``collection`` with ``payload``."""

    seq: int
    op: str
    collection: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "op": self.op,
                "collection": self.collection, "payload": self.payload}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "JournalEntry":
        return cls(seq=doc["seq"], op=doc["op"],
                   collection=doc["collection"],
                   payload=doc.get("payload", {}))


class StorageMedium:
    """The simulated durable device the journal writes to.

    Holds one framed checkpoint snapshot plus a contiguous byte log of
    framed journal entries.  ``_tail_offset`` marks where the entries
    newer than the snapshot begin; everything before it is retained
    history (unless ``retain_history`` is off, in which case a
    checkpoint physically drops it, old-style).

    This is the injection point for storage faults: deterministic
    write failures (``inject_write_failures``), per-write latency
    (``write_latency_s``), torn appends (``simulate_torn_append``),
    frame bit rot (``corrupt_frame``) and snapshot bit rot
    (``corrupt_snapshot``).
    """

    def __init__(self) -> None:
        self._log = bytearray()
        self._tail_offset = 0
        self._tail_frames = 0
        self._snapshot_blob: bytes | None = None
        #: Extra seconds each durable write costs (drain pacing).
        self.write_latency_s = 0.0
        #: Keep pre-snapshot frames at checkpoints (journal-as-history).
        self.retain_history = True
        #: True while the log holds every frame since seq 0 — the
        #: precondition for full-history replay when the snapshot rots.
        self.history_complete = True
        #: Optional ``(counter_name, amount)`` callback the durability
        #: controller wires to Telemetry.
        self.observer: Callable[[str, int], None] | None = None
        self._fail_writes = 0
        self._corrupt_next_append = False
        self.appends = 0
        self.append_failures = 0
        self.checkpoints = 0
        self.truncated_entries = 0
        self.torn_writes = 0
        self.frames_corrupted = 0
        self.snapshot_corruptions = 0

    def _observe(self, name: str, amount: int = 1) -> None:
        if self.observer is not None and amount:
            self.observer(name, amount)

    # -- fault injection ----------------------------------------------

    def inject_write_failures(self, count: int) -> None:
        """Make the next ``count`` appends raise ``StorageWriteError``."""
        if count < 0:
            raise ValueError(f"failure count must be >= 0, got {count}")
        self._fail_writes += count

    @property
    def pending_write_failures(self) -> int:
        return self._fail_writes

    def raise_for_write(self) -> None:
        if self._fail_writes > 0:
            self._fail_writes -= 1
            self.append_failures += 1
            self._observe("journal_append_failures")
            raise StorageWriteError("journal append failed (injected)")

    def simulate_torn_append(self,
                             entry: JournalEntry | None = None) -> int:
        """A crash mid-append: half a frame reaches the platter.

        The torn frame models *new, never-acknowledged* work — the
        write that was in flight when the power died — so recovery can
        truncate it with zero acked loss.  Returns the number of bytes
        that never made it.  Does not count as an append: the caller
        (the chaos controller) crashes the server in the same breath,
        exactly like a real torn write.
        """
        if entry is None:
            entry = JournalEntry(seq=-1, op="insert_one",
                                 collection="__torn__",
                                 payload={"document": {"torn": True}})
        frame_bytes = codec.encode_entry(entry)
        cut = max(codec.FRAME_HEADER.size + 1, len(frame_bytes) // 2)
        self._log += frame_bytes[:cut]
        self.torn_writes += 1
        return len(frame_bytes) - cut

    def corrupt_frame(self) -> bool:
        """Bit rot: flip a byte in the middle frame of the journal tail.

        Returns True when a frame was damaged in place.  With an empty
        tail the corruption is *armed* instead — the next append lands
        damaged — so a plan firing this fault right after a checkpoint
        still produces exactly one bad frame.
        """
        spans = self._tail_spans()
        if not spans:
            self._corrupt_next_append = True
            return False
        body_start, body_length = spans[len(spans) // 2]
        self._log[body_start + body_length // 2] ^= 0xFF
        self.frames_corrupted += 1
        return True

    def corrupt_snapshot(self) -> bool:
        """Bit rot in the checkpoint snapshot frame.  Returns True when
        there was a snapshot to damage."""
        if self._snapshot_blob is None:
            return False
        blob = bytearray(self._snapshot_blob)
        index = codec.FRAME_HEADER.size + (
            len(blob) - codec.FRAME_HEADER.size) // 2
        blob[index] ^= 0xFF
        self._snapshot_blob = bytes(blob)
        self.snapshot_corruptions += 1
        return True

    def _tail_spans(self) -> list[tuple[int, int]]:
        """``(body_start, body_length)`` of each intact tail frame."""
        spans: list[tuple[int, int]] = []
        offset = self._tail_offset
        while offset < len(self._log):
            status, body, next_offset = read_frame(self._log, offset)
            if status != FRAME_OK:
                break
            spans.append((offset + codec.FRAME_HEADER.size, len(body)))
            offset = next_offset
        return spans

    # -- durable surface ----------------------------------------------

    def append(self, entry: JournalEntry) -> None:
        self.raise_for_write()
        frame_bytes = codec.encode_entry(entry)
        if self._corrupt_next_append:
            self._corrupt_next_append = False
            damaged = bytearray(frame_bytes)
            damaged[codec.FRAME_HEADER.size + len(damaged) // 2] ^= 0xFF
            frame_bytes = bytes(damaged)
            self.frames_corrupted += 1
        self._log += frame_bytes
        self._tail_frames += 1
        self.appends += 1

    def store_snapshot(self, state: dict[str, Any]) -> None:
        """Checkpoint: persist ``state`` and advance the tail pointer.

        With ``retain_history`` (the default) the folded frames stay on
        the log as replayable history; without it they are physically
        dropped — the pre-history behaviour — which forfeits the
        snapshot-corruption fallback (``history_complete`` goes False).
        """
        self._snapshot_blob = codec.encode_snapshot(state)
        self.checkpoints += 1
        self.truncated_entries += self._tail_frames
        self._observe("journal_truncated_entries", self._tail_frames)
        if self.retain_history:
            self._tail_offset = len(self._log)
        else:
            if self._log:
                self.history_complete = False
            del self._log[:]
            self._tail_offset = 0
        self._tail_frames = 0

    def load_snapshot(self) -> dict[str, Any] | None:
        """Decode the checkpoint snapshot, or None when none was taken.

        Raises :class:`SnapshotCorruptError` when the snapshot frame
        fails its integrity check — the recovery scan catches this and
        falls back to full-history replay when the log allows it.
        """
        if self._snapshot_blob is None:
            return None
        status, body, _ = read_frame(self._snapshot_blob, 0)
        if status != FRAME_OK:
            raise SnapshotCorruptError(
                f"checkpoint snapshot frame is {status}")
        return codec.decode_snapshot(body)

    def snapshot_status(self) -> str:
        """``"none"``, ``"ok"`` or ``"corrupt"`` without raising."""
        if self._snapshot_blob is None:
            return "none"
        status, _, _ = read_frame(self._snapshot_blob, 0)
        return "ok" if status == FRAME_OK else "corrupt"

    @property
    def has_snapshot(self) -> bool:
        return self._snapshot_blob is not None

    @property
    def entries(self) -> list[JournalEntry]:
        """The decoded journal tail (intact frames, in order).  Damaged
        frames are the recovery scan's business — see
        :func:`repro.durability.recovery.run_recovery_scan`."""
        decoded: list[JournalEntry] = []
        offset = self._tail_offset
        while offset < len(self._log):
            status, body, next_offset = read_frame(self._log, offset)
            if status == FRAME_TORN:
                break
            if status == FRAME_OK:
                decoded.append(codec.decode_entry(body))
            if next_offset <= offset:
                break
            offset = next_offset
        return decoded

    def mark_history_incomplete(self) -> None:
        """The log no longer reproduces state from seq 0 (a snapshot
        bootstrap bulk-loaded documents past the journal), so a rotten
        snapshot cannot fall back to full-history replay."""
        self.history_complete = False

    # -- raw log access (recovery scan / history readers) -------------

    def log_view(self) -> bytes:
        """An immutable copy of the full byte log, history included."""
        return bytes(self._log)

    @property
    def tail_offset(self) -> int:
        return self._tail_offset

    @property
    def log_bytes(self) -> int:
        return len(self._log)

    def truncate_log(self, offset: int) -> int:
        """Cut the log at ``offset`` (torn-tail repair).  Returns the
        number of bytes dropped."""
        if offset < self._tail_offset:
            raise DurabilityError(
                f"refusing to truncate into checkpointed history "
                f"({offset} < tail offset {self._tail_offset})")
        dropped = len(self._log) - offset
        del self._log[offset:]
        return dropped

    def __len__(self) -> int:
        return self._tail_frames


class WriteAheadJournal:
    """Append-before-apply journaling with periodic checkpoints."""

    def __init__(self, medium: StorageMedium, checkpoint_interval: int,
                 state_provider: Callable[[], dict[str, Any]] | None = None):
        self.medium = medium
        self.checkpoint_interval = checkpoint_interval
        #: Callable returning the full state a checkpoint must persist
        #: (the journaled store plus any companion state, e.g. the
        #: server's dedup window).
        self.state_provider = state_provider
        self._seq = 0
        self._depth = 0
        self._suspend = 0
        self.entries_written = 0
        #: Non-strict ops whose append failed: applied in memory only,
        #: durable at the next checkpoint, lost by a crash before it.
        self.lost_appends = 0

    # -- journaling ---------------------------------------------------

    @property
    def suspended_now(self) -> bool:
        return self._suspend > 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No-journal window: replay and snapshot restore run inside it
        so recovering an op never journals it again."""
        self._suspend += 1
        try:
            yield
        finally:
            self._suspend -= 1

    @contextmanager
    def op(self, op: str, collection: str, *, strict: bool = False,
           **payload: Any) -> Iterator[bool]:
        """Journal one mutating operation around its in-memory apply.

        Appends the entry *before* yielding (write-ahead); nested ops
        opened while another is active are suppressed, so a compound
        operation replays as exactly one entry.  Yields True when this
        op was journaled.  The checkpoint check runs only after the
        outermost apply completes, never between append and apply.

        When the medium rejects the append, a ``strict`` op raises
        :class:`StorageWriteError` *before* any in-memory change — the
        server's ingest pump uses this so unjournaled records are never
        acknowledged.  A non-strict op absorbs the failure and applies
        in memory anyway: a dirty write that was never flushed, visible
        until the next crash and lost by it (``lost_appends`` counts
        them).
        """
        if self._suspend > 0 or self._depth > 0:
            self._depth += 1
            try:
                yield False
            finally:
                self._depth -= 1
            return
        journaled = True
        try:
            self._append(op, collection, payload)
        except StorageWriteError:
            if strict:
                raise
            self.lost_appends += 1
            self.medium._observe("journal_lost_appends")
            journaled = False
        self._depth += 1
        try:
            yield journaled
        finally:
            self._depth -= 1
        if journaled:
            self.maybe_checkpoint()

    def _append(self, op: str, collection: str,
                payload: dict[str, Any]) -> None:
        # No defensive payload copy: the medium encodes the entry to
        # bytes inside ``append``, which *is* the point-in-time capture.
        entry = JournalEntry(seq=self._seq, op=op, collection=collection,
                             payload=payload)
        self.medium.append(entry)  # raises StorageWriteError on fault
        self._seq += 1
        self.entries_written += 1

    # -- checkpoints --------------------------------------------------

    @property
    def lag(self) -> int:
        """Journal entries not yet folded into a checkpoint."""
        return len(self.medium)

    def maybe_checkpoint(self) -> None:
        if len(self.medium) >= self.checkpoint_interval:
            self.checkpoint()

    def checkpoint(self, state: dict[str, Any] | None = None) -> None:
        """Snapshot full state to the medium and truncate the journal."""
        if state is None:
            if self.state_provider is None:
                raise DurabilityError(
                    "checkpoint needs a state or a state_provider")
            state = self.state_provider()
        self.medium.store_snapshot(state)


@dataclass
class ReplayResult:
    """Outcome of replaying a journal tail onto a restored store."""

    applied: int = 0
    #: Entries whose original application failed; they fail identically
    #: on replay and leave the store unchanged.
    failed: int = 0
    #: Failure taxonomy: ``{seq, op, collection, error}`` per failed
    #: entry, in journal order — surfaced in the chaos report's
    #: recovery section so a replay that skips work names the work.
    failures: list[dict[str, Any]] = field(default_factory=list)
    #: Record ids from composite ``ingest`` entries, in journal order —
    #: the dedup-window state to restore on top of the snapshot's.
    dedup_ids: list[str] = field(default_factory=list)
    #: ``(record_id, trace_dict)`` for replayed ingests that carried a
    #: trace context, so recovery can emit ``replay`` spans.
    traces: list[tuple[str | None, dict[str, Any]]] = field(
        default_factory=list)


def replay(store, entries: list[JournalEntry]) -> ReplayResult:
    """Apply journal ``entries`` to ``store`` in order.

    Callers run this under ``journal.suspended()`` so a journaled store
    does not re-journal its own recovery.
    """
    result = ReplayResult()
    for entry in entries:
        try:
            _apply(store, entry, result)
        except DocStoreError as exc:
            result.failed += 1
            result.failures.append({
                "seq": entry.seq, "op": entry.op,
                "collection": entry.collection,
                "error": f"{type(exc).__name__}: {exc}"})
        else:
            result.applied += 1
    return result


def _apply(store, entry: JournalEntry, result: ReplayResult) -> None:
    op, payload = entry.op, entry.payload
    if op == "drop_collection":
        store.drop_collection(entry.collection)
        return
    collection = store.collection(entry.collection)
    if op == "insert_one":
        collection.insert_one(payload["document"])
    elif op == "update_one":
        collection.update_one(payload["query"], payload["update"],
                              payload.get("upsert", False))
    elif op == "update_many":
        collection.update_many(payload["query"], payload["update"])
    elif op == "delete_one":
        collection.delete_one(payload["query"])
    elif op == "delete_many":
        collection.delete_many(payload["query"])
    elif op == "drop":
        collection.drop()
    elif op == "create_index":
        collection.create_index(payload["path"], payload.get("unique", False))
    elif op == "insert_many":
        for document in payload["documents"]:
            collection.insert_one(document)
    elif op == "ingest":
        # Composite server entry: record document + dedup id move
        # together, so recovery can never ack-then-lose or double-store.
        collection.insert_one(payload["document"])
        record_id = payload.get("record_id")
        if record_id is not None:
            result.dedup_ids.append(record_id)
        trace = payload["document"].get("trace")
        if trace is not None:
            result.traces.append((record_id, trace))
    elif op == "ingest_batch":
        # One frame for N records, stored column-wise (the frame is the
        # wire envelope).  Replay walks the columns record-for-record in
        # order — document insert, dedup id, trace — so the journal is
        # indistinguishable from N singleton ``ingest`` frames to every
        # downstream consumer (fingerprints, dedup restore, replay
        # spans).
        from repro.core.common.batch import RecordBatch
        batch = RecordBatch.from_payload(payload["batch"])
        record_ids = batch.record_ids
        for index, document in enumerate(batch.store_documents()):
            collection.insert_one(document)
            record_id = record_ids[index]
            if record_id is not None:
                result.dedup_ids.append(record_id)
            trace = document.get("trace")
            if trace is not None:
                result.traces.append((record_id, trace))
    else:
        raise DurabilityError(f"unknown journal op {op!r}")
