"""Write-ahead journal over a simulated durable medium.

Every mutating docstore operation appends a compact, replayable
:class:`JournalEntry` *before* applying in memory (write-ahead), so a
server crash loses at most work that was never acknowledged.  The
journal periodically folds itself into a snapshot+truncate checkpoint:
the medium keeps one full-state snapshot plus the entries appended
since, and recovery is ``restore(snapshot)`` followed by
:func:`replay` of the tail.

Invariants:

- **Append-before-apply** — an entry is on the medium before the
  in-memory structures change; a crash between the two replays the
  entry and converges to the post-apply state.
- **Outermost-only journaling** — compound operations (an upsert that
  inserts, the server's composite ``ingest``) journal one entry; the
  nested ops they perform are suppressed by a depth guard so replay
  never double-applies.
- **Checkpoint-after-apply** — checkpoints are only taken after the
  current operation has fully applied, so a snapshot can never miss
  the effect of an entry the truncation discards.
- **Replay idempotence from the snapshot** — replaying the tail onto
  the snapshot state reproduces the pre-crash state exactly; an entry
  whose original application failed fails identically on replay (the
  store raises the same error from the same state) and is skipped.

The medium is deliberately simple — an in-process object standing in
for an fsync'd file — but it is the *fault point*: the chaos
controller injects write failures and latency here, which is what the
circuit breaker in :mod:`repro.durability.breaker` reacts to.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.docstore.errors import DocStoreError
from repro.durability.errors import DurabilityError, StorageWriteError


@dataclass(frozen=True)
class JournalEntry:
    """One replayable mutation: ``op`` on ``collection`` with ``payload``."""

    seq: int
    op: str
    collection: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "op": self.op,
                "collection": self.collection, "payload": self.payload}


class StorageMedium:
    """The simulated durable device the journal writes to.

    Holds the latest checkpoint snapshot plus the journal tail, and is
    the injection point for storage faults: a burst of deterministic
    write failures (``inject_write_failures``) and extra per-write
    latency (``write_latency_s``, charged by the drain pump).
    """

    def __init__(self) -> None:
        self.entries: list[JournalEntry] = []
        self._snapshot: dict[str, Any] | None = None
        #: Extra seconds each durable write costs (drain pacing).
        self.write_latency_s = 0.0
        self._fail_writes = 0
        self.appends = 0
        self.append_failures = 0
        self.checkpoints = 0
        self.truncated_entries = 0

    # -- fault injection ----------------------------------------------

    def inject_write_failures(self, count: int) -> None:
        """Make the next ``count`` appends raise ``StorageWriteError``."""
        if count < 0:
            raise ValueError(f"failure count must be >= 0, got {count}")
        self._fail_writes += count

    @property
    def pending_write_failures(self) -> int:
        return self._fail_writes

    def raise_for_write(self) -> None:
        if self._fail_writes > 0:
            self._fail_writes -= 1
            self.append_failures += 1
            raise StorageWriteError("journal append failed (injected)")

    # -- durable surface ----------------------------------------------

    def append(self, entry: JournalEntry) -> None:
        self.raise_for_write()
        self.entries.append(entry)
        self.appends += 1

    def store_snapshot(self, state: dict[str, Any]) -> None:
        """Checkpoint: persist ``state`` and truncate the journal tail."""
        self._snapshot = copy.deepcopy(state)
        self.checkpoints += 1
        self.truncated_entries += len(self.entries)
        self.entries.clear()

    def load_snapshot(self) -> dict[str, Any] | None:
        return copy.deepcopy(self._snapshot)

    @property
    def has_snapshot(self) -> bool:
        return self._snapshot is not None

    def __len__(self) -> int:
        return len(self.entries)


class WriteAheadJournal:
    """Append-before-apply journaling with periodic checkpoints."""

    def __init__(self, medium: StorageMedium, checkpoint_interval: int,
                 state_provider: Callable[[], dict[str, Any]] | None = None):
        self.medium = medium
        self.checkpoint_interval = checkpoint_interval
        #: Callable returning the full state a checkpoint must persist
        #: (the journaled store plus any companion state, e.g. the
        #: server's dedup window).
        self.state_provider = state_provider
        self._seq = 0
        self._depth = 0
        self._suspend = 0
        self.entries_written = 0
        #: Non-strict ops whose append failed: applied in memory only,
        #: durable at the next checkpoint, lost by a crash before it.
        self.lost_appends = 0

    # -- journaling ---------------------------------------------------

    @property
    def suspended_now(self) -> bool:
        return self._suspend > 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """No-journal window: replay and snapshot restore run inside it
        so recovering an op never journals it again."""
        self._suspend += 1
        try:
            yield
        finally:
            self._suspend -= 1

    @contextmanager
    def op(self, op: str, collection: str, *, strict: bool = False,
           **payload: Any) -> Iterator[bool]:
        """Journal one mutating operation around its in-memory apply.

        Appends the entry *before* yielding (write-ahead); nested ops
        opened while another is active are suppressed, so a compound
        operation replays as exactly one entry.  Yields True when this
        op was journaled.  The checkpoint check runs only after the
        outermost apply completes, never between append and apply.

        When the medium rejects the append, a ``strict`` op raises
        :class:`StorageWriteError` *before* any in-memory change — the
        server's ingest pump uses this so unjournaled records are never
        acknowledged.  A non-strict op absorbs the failure and applies
        in memory anyway: a dirty write that was never flushed, visible
        until the next crash and lost by it (``lost_appends`` counts
        them).
        """
        if self._suspend > 0 or self._depth > 0:
            self._depth += 1
            try:
                yield False
            finally:
                self._depth -= 1
            return
        journaled = True
        try:
            self._append(op, collection, payload)
        except StorageWriteError:
            if strict:
                raise
            self.lost_appends += 1
            journaled = False
        self._depth += 1
        try:
            yield journaled
        finally:
            self._depth -= 1
        if journaled:
            self.maybe_checkpoint()

    def _append(self, op: str, collection: str,
                payload: dict[str, Any]) -> None:
        entry = JournalEntry(seq=self._seq, op=op, collection=collection,
                             payload=copy.deepcopy(payload))
        self.medium.append(entry)  # raises StorageWriteError on fault
        self._seq += 1
        self.entries_written += 1

    # -- checkpoints --------------------------------------------------

    @property
    def lag(self) -> int:
        """Journal entries not yet folded into a checkpoint."""
        return len(self.medium)

    def maybe_checkpoint(self) -> None:
        if len(self.medium) >= self.checkpoint_interval:
            self.checkpoint()

    def checkpoint(self, state: dict[str, Any] | None = None) -> None:
        """Snapshot full state to the medium and truncate the journal."""
        if state is None:
            if self.state_provider is None:
                raise DurabilityError(
                    "checkpoint needs a state or a state_provider")
            state = self.state_provider()
        self.medium.store_snapshot(state)


@dataclass
class ReplayResult:
    """Outcome of replaying a journal tail onto a restored store."""

    applied: int = 0
    #: Entries whose original application failed; they fail identically
    #: on replay and leave the store unchanged.
    failed: int = 0
    #: Record ids from composite ``ingest`` entries, in journal order —
    #: the dedup-window state to restore on top of the snapshot's.
    dedup_ids: list[str] = field(default_factory=list)
    #: ``(record_id, trace_dict)`` for replayed ingests that carried a
    #: trace context, so recovery can emit ``replay`` spans.
    traces: list[tuple[str | None, dict[str, Any]]] = field(
        default_factory=list)


def replay(store, entries: list[JournalEntry]) -> ReplayResult:
    """Apply journal ``entries`` to ``store`` in order.

    Callers run this under ``journal.suspended()`` so a journaled store
    does not re-journal its own recovery.
    """
    result = ReplayResult()
    for entry in entries:
        try:
            _apply(store, entry, result)
        except DocStoreError:
            result.failed += 1
        else:
            result.applied += 1
    return result


def _apply(store, entry: JournalEntry, result: ReplayResult) -> None:
    op, payload = entry.op, entry.payload
    if op == "drop_collection":
        store.drop_collection(entry.collection)
        return
    collection = store.collection(entry.collection)
    if op == "insert_one":
        collection.insert_one(payload["document"])
    elif op == "update_one":
        collection.update_one(payload["query"], payload["update"],
                              payload.get("upsert", False))
    elif op == "update_many":
        collection.update_many(payload["query"], payload["update"])
    elif op == "delete_one":
        collection.delete_one(payload["query"])
    elif op == "delete_many":
        collection.delete_many(payload["query"])
    elif op == "drop":
        collection.drop()
    elif op == "create_index":
        collection.create_index(payload["path"], payload.get("unique", False))
    elif op == "ingest":
        # Composite server entry: record document + dedup id move
        # together, so recovery can never ack-then-lose or double-store.
        collection.insert_one(payload["document"])
        record_id = payload.get("record_id")
        if record_id is not None:
            result.dedup_ids.append(record_id)
        trace = payload["document"].get("trace")
        if trace is not None:
            result.traces.append((record_id, trace))
    else:
        raise DurabilityError(f"unknown journal op {op!r}")
