"""Circuit breaker around the storage medium.

Consecutive journal write failures trip the breaker **open**: the
drain pump stops hammering a dying medium (each attempt costs a
record's retry budget) and sheds instead.  After ``reset_s`` the
breaker **half-opens** and lets probes through; the first success
closes it again, another failure re-opens it for a fresh window.
Time is the virtual clock — callers pass ``world.now``.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip on consecutive failures, half-open on a timer."""

    def __init__(self, trip_after: int, reset_s: float):
        if trip_after <= 0:
            raise ValueError(f"trip_after must be > 0, got {trip_after}")
        self.trip_after = trip_after
        self.reset_s = reset_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at: float | None = None

    def allow(self, now: float) -> bool:
        """May an operation be attempted at virtual time ``now``?"""
        if self.state == OPEN:
            if self._opened_at is not None and \
                    now - self._opened_at >= self.reset_s:
                self.state = HALF_OPEN
                return True
            return False
        return True  # closed or half-open (probing)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or \
                self.consecutive_failures >= self.trip_after:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self._opened_at = now

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self._opened_at = None

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    def to_dict(self) -> dict:
        return {"state": self.state, "trips": self.trips,
                "consecutive_failures": self.consecutive_failures}
