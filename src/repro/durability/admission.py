"""Admission control: a bounded intake queue with watermark shedding.

The server's durable ingest path decouples *receiving* a record from
*applying* it: arrivals enter a bounded FIFO intake queue and a drain
pump applies them at the pace the storage medium sustains.  When
intake outruns drain the queue sheds load instead of growing without
bound:

- past the **high watermark** it sheds down to the **low watermark**,
  oldest lowest-priority first;
- watermark shedding only ever victimises *continuous* records
  (priority 0) — OSN-triggered records (priority 1) are the events
  the middleware exists to capture and are never shed before every
  continuous record is gone;
- only a **hard capacity** overflow may shed an OSN record, and then
  only when the queue holds nothing of lower priority.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass
class IntakeItem:
    """One record waiting in the intake queue."""

    record_id: str | None
    payload: dict[str, Any]
    record: Any
    reply_to: str | None
    sent_at: float | None
    trace: Any
    #: 1 for OSN-triggered records, 0 for continuous samples.
    priority: int
    enqueued_at: float
    #: Failed apply attempts (storage write errors) so far.
    attempts: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def record_ids(self) -> tuple[str, ...]:
        """The dedupable ids this item carries: every member id for a
        batch item (``extras["batch"]``), the singleton id otherwise.
        Pending-id bookkeeping must cover *members* — a retransmitted
        singleton of a record queued inside a batch has to hit the
        pending short-circuit, not re-enter intake."""
        batch = self.extras.get("batch")
        if batch is not None:
            return tuple(record_id for record_id in batch.record_ids
                         if record_id is not None)
        if self.record_id is not None:
            return (self.record_id,)
        return ()


class AdmissionController:
    """Bounded FIFO intake with priority-aware load shedding."""

    def __init__(self, capacity: int, high_watermark: float = 0.75,
                 low_watermark: float = 0.5):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._queue: deque[IntakeItem] = deque()
        self._pending_ids: set[str] = set()
        self.admitted = 0
        self.shed = 0
        self.max_depth = 0

    # -- intake -------------------------------------------------------

    def admit(self, item: IntakeItem) -> list[IntakeItem]:
        """Enqueue ``item``; returns the records shed to make room.

        The new item itself may be among the victims when it is the
        lowest-priority entry of a full queue.
        """
        self._queue.append(item)
        self._pending_ids.update(item.record_ids())
        self.admitted += 1
        self.max_depth = max(self.max_depth, len(self._queue))
        victims: list[IntakeItem] = []
        if len(self._queue) > self.capacity:
            # Hard overflow: get back under capacity no matter what.
            victims.extend(self._shed_to(self.capacity, continuous_only=False))
        if len(self._queue) >= self.high_watermark * self.capacity:
            target = int(self.low_watermark * self.capacity)
            victims.extend(self._shed_to(target, continuous_only=True))
        for victim in victims:
            self.shed += 1
        return victims

    def _shed_to(self, target: int, *, continuous_only: bool) -> list[IntakeItem]:
        victims: list[IntakeItem] = []
        while len(self._queue) > target:
            victim = self._pick_victim(continuous_only)
            if victim is None:
                break  # only OSN records left; watermark shedding stops
            self._queue.remove(victim)
            self._forget(victim)
            victims.append(victim)
        return victims

    def _pick_victim(self, continuous_only: bool) -> IntakeItem | None:
        """Oldest continuous record, else (hard overflow only) oldest."""
        for item in self._queue:
            if item.priority == 0:
                return item
        if continuous_only or not self._queue:
            return None
        return self._queue[0]

    # -- drain --------------------------------------------------------

    def pop(self) -> IntakeItem | None:
        """Oldest admitted record, or None when the queue is idle."""
        if not self._queue:
            return None
        item = self._queue.popleft()
        self._forget(item)
        return item

    def requeue(self, item: IntakeItem) -> None:
        """Put a failed-apply record back at the head for a retry."""
        self._queue.appendleft(item)
        self._pending_ids.update(item.record_ids())

    def pending(self, record_id: str) -> bool:
        """True when ``record_id`` is waiting in the queue — the
        retransmission of a not-yet-durable record is ignored, not
        acked, so the sender keeps retrying until the apply lands."""
        return record_id in self._pending_ids

    def wipe(self) -> list[IntakeItem]:
        """Crash: volatile intake is lost.  Returns what was wiped —
        unacked, so senders retransmit it all after the restart."""
        wiped = list(self._queue)
        self._queue.clear()
        self._pending_ids.clear()
        return wiped

    def _forget(self, item: IntakeItem) -> None:
        for record_id in item.record_ids():
            self._pending_ids.discard(record_id)

    def __len__(self) -> int:
        return len(self._queue)
