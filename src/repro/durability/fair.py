"""Per-source fair admission: weighted queues behind the intake API.

The single global FIFO of :class:`~repro.durability.admission.
AdmissionController` lets one chatty device starve everyone else: its
records fill the queue, and watermark shedding victimises whoever's
records happen to be oldest.  :class:`FairAdmissionController` keeps
one FIFO *per source* (device/tenant) behind the exact same external
API and changes two policies:

- **draining** is weighted round-robin across sources — a source with
  weight *w* gets *w* pops per cycle, so a backlogged device cannot
  monopolise the drain pump;
- **shedding** victimises the source with the largest backlog first
  (the heaviest talker pays for the overload it caused), oldest
  continuous record within it.  OSN-triggered records (priority 1)
  keep their global protection: watermark shedding never touches
  them, and only a hard capacity overflow with *no* continuous record
  anywhere may take one.

Deterministic throughout: round-robin order is source insertion
order, backlog ties break lexicographically, and nothing draws from
an RNG — a run with fair admission enabled is exactly reproducible
from the seed.
"""

from __future__ import annotations

from collections import deque

from repro.durability.admission import IntakeItem


class FairAdmissionController:
    """Weighted per-source intake, API-compatible with the global FIFO."""

    def __init__(self, capacity: int, high_watermark: float = 0.75,
                 low_watermark: float = 0.5,
                 weights: dict[str, int] | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._weights = dict(weights or {})
        self._queues: dict[str, deque[IntakeItem]] = {}
        #: Source order for the round-robin cursor (insertion order).
        self._order: list[str] = []
        self._cursor = 0
        self._served = 0
        #: Failed-apply retries jump every queue (same retry-next-tick
        #: semantics as the global controller's appendleft).
        self._retry: deque[IntakeItem] = deque()
        self._pending_ids: set[str] = set()
        self._size = 0
        self.admitted = 0
        self.shed = 0
        self.max_depth = 0
        self.admitted_by_source: dict[str, int] = {}
        self.shed_by_source: dict[str, int] = {}

    # -- sources ------------------------------------------------------

    @staticmethod
    def source_of(item: IntakeItem) -> str:
        record = item.record
        source = getattr(record, "device_id", None)
        if source is None and isinstance(item.payload, dict):
            source = item.payload.get("device_id")
        return source if source is not None else "?"

    def weight(self, source: str) -> int:
        return max(1, int(self._weights.get(source, 1)))

    def _queue_for(self, source: str) -> deque:
        queue = self._queues.get(source)
        if queue is None:
            queue = self._queues[source] = deque()
            self._order.append(source)
        return queue

    # -- intake -------------------------------------------------------

    def admit(self, item: IntakeItem) -> list[IntakeItem]:
        """Enqueue ``item``; returns the records shed to make room."""
        source = self.source_of(item)
        self._queue_for(source).append(item)
        self._size += 1
        self._pending_ids.update(item.record_ids())
        self.admitted += 1
        self.admitted_by_source[source] = \
            self.admitted_by_source.get(source, 0) + 1
        self.max_depth = max(self.max_depth, self._size)
        victims: list[IntakeItem] = []
        if self._size > self.capacity:
            victims.extend(self._shed_to(self.capacity,
                                         continuous_only=False))
        if self._size >= self.high_watermark * self.capacity:
            target = int(self.low_watermark * self.capacity)
            victims.extend(self._shed_to(target, continuous_only=True))
        for victim in victims:
            self.shed += 1
            victim_source = self.source_of(victim)
            self.shed_by_source[victim_source] = \
                self.shed_by_source.get(victim_source, 0) + 1
        return victims

    def _shed_to(self, target: int, *,
                 continuous_only: bool) -> list[IntakeItem]:
        victims: list[IntakeItem] = []
        while self._size > target:
            victim = self._pick_victim(continuous_only)
            if victim is None:
                break  # only OSN records left; watermark shedding stops
            source, item = victim
            self._queues[source].remove(item)
            self._size -= 1
            self._forget(item)
            victims.append(item)
        return victims

    def _pick_victim(self,
                     continuous_only: bool) -> tuple[str, IntakeItem] | None:
        """Oldest continuous record of the most-backlogged source; on
        hard overflow with no continuous anywhere, the oldest record of
        the most-backlogged source regardless of priority."""
        by_backlog = sorted(
            (source for source in self._order if self._queues[source]),
            key=lambda source: (-len(self._queues[source]), source))
        for source in by_backlog:
            for item in self._queues[source]:
                if item.priority == 0:
                    return source, item
        if continuous_only or not by_backlog:
            return None
        source = by_backlog[0]
        return source, self._queues[source][0]

    # -- drain --------------------------------------------------------

    def pop(self) -> IntakeItem | None:
        """Next record by weighted round-robin, or ``None`` when idle."""
        if self._retry:
            item = self._retry.popleft()
            self._size -= 1
            self._forget(item)
            return item
        if self._size == 0:
            return None
        occupied = [source for source in self._order if self._queues[source]]
        if not occupied:
            return None
        # Advance the cursor to the next occupied source, honouring the
        # current source's remaining weight credit.
        for _ in range(len(self._order) + 1):
            source = self._order[self._cursor % len(self._order)]
            queue = self._queues.get(source)
            if queue and self._served < self.weight(source):
                self._served += 1
                item = queue.popleft()
                self._size -= 1
                self._forget(item)
                if self._served >= self.weight(source):
                    self._cursor = (self._cursor + 1) % len(self._order)
                    self._served = 0
                return item
            self._cursor = (self._cursor + 1) % len(self._order)
            self._served = 0
        return None  # pragma: no cover - occupied is non-empty above

    def requeue(self, item: IntakeItem) -> None:
        """Put a failed-apply record back at the head for a retry."""
        self._retry.appendleft(item)
        self._size += 1
        self._pending_ids.update(item.record_ids())

    def pending(self, record_id: str) -> bool:
        return record_id in self._pending_ids

    def wipe(self) -> list[IntakeItem]:
        """Crash: volatile intake is lost (unacked, will retransmit)."""
        wiped = list(self._retry)
        for source in self._order:
            wiped.extend(self._queues[source])
            self._queues[source].clear()
        self._retry.clear()
        self._pending_ids.clear()
        self._size = 0
        self._served = 0
        return wiped

    def _forget(self, item: IntakeItem) -> None:
        for record_id in item.record_ids():
            self._pending_ids.discard(record_id)

    def __len__(self) -> int:
        return self._size

    # -- introspection ------------------------------------------------

    def fairness_report(self) -> dict[str, dict[str, int]]:
        """Per-source admitted/shed/depth/weight accounting."""
        return {source: {
            "admitted": self.admitted_by_source.get(source, 0),
            "shed": self.shed_by_source.get(source, 0),
            "depth": len(self._queues[source]),
            "weight": self.weight(source),
        } for source in sorted(self._order)}
