"""Corruption-tolerant recovery: frame classification, scan policy,
and bounded journal backfill.

A real durable medium does not fail politely.  The recovery scan
(:func:`run_recovery_scan`) walks the byte log frame by frame and
classifies every damaged stretch instead of crashing on it:

- **Torn tail** — the final frame is truncated (a crash mid-append).
  The write never completed, so it was never acknowledged: the scan
  truncates it cleanly and accounts the loss (``truncated_bytes``,
  ``torn_frames``).  Recovery converges with zero acked loss.
- **Mid-log CRC mismatch** — bit rot inside the tail.  The damaged
  frame is *quarantined* and recovery restores the snapshot plus the
  longest valid prefix before it; intact frames after it are
  *discarded* (their effects may depend on the lost one).  This is
  acked data loss, so it fails loudly: the scan is flagged, the
  controller degrades its health, and the chaos CLI exits nonzero
  unless the plan declared the injection.
- **Snapshot corruption** — the checkpoint frame fails its CRC.  When
  the log still holds every frame since genesis
  (``medium.history_complete``), recovery falls back to full-history
  replay and loses nothing; when it does not (a snapshot-bootstrapped
  shard), the scan reports the state unrecoverable and recovers the
  tail prefix best-effort.

The same scan (with ``repair=False``) backs the ``repro replay``
divergence oracle: re-derive a store offline from snapshot + scanned
entries and fingerprint-compare it against the live one.

:class:`JournalBackfill` is the journal-as-history payoff: a bounded,
idempotent re-publication of a seq window (e.g. every retained
``ingest``) through a newly registered stream or filter, with a
resumable progress checkpoint — the ``replay_backfill`` pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.durability.codec import (
    FRAME_CORRUPT,
    FRAME_OK,
    FRAME_TORN,
    decode_entry,
    read_frame,
)
from repro.durability.errors import CodecError, SnapshotCorruptError
from repro.durability.journal import JournalEntry, StorageMedium


@dataclass(frozen=True)
class FrameIssue:
    """One damaged stretch of the log, classified."""

    kind: str  # "torn_tail" | "crc_mismatch" | "undecodable"
    offset: int
    detail: str


@dataclass
class RecoveryScan:
    """What a recovery pass found on the medium and what it salvaged."""

    #: Safe-to-replay entries: the longest valid prefix of the scanned
    #: region (the whole region when nothing was damaged).
    entries: list[JournalEntry] = field(default_factory=list)
    issues: list[FrameIssue] = field(default_factory=list)
    #: Decoded checkpoint state to restore under the entries, or None
    #: (no checkpoint yet, or full-history fallback in force).
    snapshot: dict[str, Any] | None = None
    snapshot_status: str = "none"  # "none" | "ok" | "corrupt"
    #: Frames quarantined by a CRC mismatch (acked-loss candidates).
    quarantined_frames: int = 0
    #: Truncated final frames (never acknowledged; zero acked loss).
    torn_frames: int = 0
    #: Intact frames after the first quarantined one — unreplayable
    #: because their effects may depend on the lost frame.
    discarded_frames: int = 0
    #: Torn bytes cut from the log end (when ``repair`` ran).
    truncated_bytes: int = 0
    scanned_frames: int = 0
    #: The snapshot rotted and recovery replayed from genesis instead.
    used_full_history: bool = False
    #: The snapshot rotted *and* the log cannot reproduce it (history
    #: incomplete): state before the tail is unrecoverable.
    snapshot_unrecoverable: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing acked can have been lost: no quarantined
        frames and no unrecoverable snapshot (torn tails are clean)."""
        return (self.quarantined_frames == 0
                and not self.snapshot_unrecoverable)

    def to_dict(self) -> dict[str, Any]:
        return {
            "entries": len(self.entries),
            "scanned_frames": self.scanned_frames,
            "quarantined_frames": self.quarantined_frames,
            "torn_frames": self.torn_frames,
            "discarded_frames": self.discarded_frames,
            "truncated_bytes": self.truncated_bytes,
            "snapshot_status": self.snapshot_status,
            "used_full_history": self.used_full_history,
            "snapshot_unrecoverable": self.snapshot_unrecoverable,
            "clean": self.clean,
            "issues": [{"kind": issue.kind, "offset": issue.offset,
                        "detail": issue.detail}
                       for issue in self.issues],
        }


def _scan_region(data: bytes, start: int, scan: RecoveryScan) -> int:
    """Walk frames in ``data[start:]`` into ``scan``.  Returns the
    offset where a torn tail begins, or ``len(data)`` when none."""
    offset = start
    poisoned = False
    while offset < len(data):
        status, body, next_offset = read_frame(data, offset)
        if status == FRAME_TORN:
            scan.torn_frames += 1
            scan.issues.append(FrameIssue(
                "torn_tail", offset,
                f"{len(data) - offset} bytes of incomplete final frame"))
            return offset
        scan.scanned_frames += 1
        if status == FRAME_CORRUPT:
            scan.quarantined_frames += 1
            scan.issues.append(FrameIssue(
                "crc_mismatch", offset, "frame body fails its CRC"))
            poisoned = True
        elif poisoned:
            scan.discarded_frames += 1
        else:
            try:
                scan.entries.append(decode_entry(body))
            except CodecError as exc:
                scan.quarantined_frames += 1
                scan.issues.append(FrameIssue(
                    "undecodable", offset, str(exc)))
                poisoned = True
        if next_offset <= offset:  # unparseable header: nothing beyond
            scan.issues.append(FrameIssue(
                "crc_mismatch", offset, "unresynchronizable frame header"))
            return len(data)
        offset = next_offset
    return len(data)


def run_recovery_scan(medium: StorageMedium, *,
                      repair: bool = True) -> RecoveryScan:
    """Classify the medium's damage and salvage what the policy allows.

    With ``repair`` (the recovery path) a torn tail is physically
    truncated from the log so later appends start on a frame boundary;
    without it (the verify path) the medium is left untouched.
    """
    scan = RecoveryScan()
    scan.snapshot_status = medium.snapshot_status()
    data = medium.log_view()
    if scan.snapshot_status == "corrupt":
        if medium.history_complete:
            # The log still holds every frame since genesis: replay it
            # all and the rotten snapshot costs nothing.
            scan.used_full_history = True
            start = 0
        else:
            scan.snapshot_unrecoverable = True
            start = medium.tail_offset
    else:
        if scan.snapshot_status == "ok":
            try:
                scan.snapshot = medium.load_snapshot()
            except SnapshotCorruptError:  # pragma: no cover - raced rot
                scan.snapshot_status = "corrupt"
                scan.snapshot_unrecoverable = True
        start = medium.tail_offset
    torn_at = _scan_region(data, start, scan)
    if torn_at < len(data):
        scan.truncated_bytes = len(data) - torn_at
        if repair:
            medium.truncate_log(torn_at)
    return scan


# -- backfill ---------------------------------------------------------

@dataclass
class BackfillCheckpoint:
    """Resumable progress cursor for a journal backfill."""

    #: The next journal seq to examine (everything below is done).
    next_seq: int = 0
    published: int = 0
    #: Entries in the window that the op/collection filter rejected.
    skipped: int = 0
    #: True once the cursor has moved past the whole requested window.
    exhausted: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"next_seq": self.next_seq, "published": self.published,
                "skipped": self.skipped, "exhausted": self.exhausted}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "BackfillCheckpoint":
        return cls(next_seq=doc.get("next_seq", 0),
                   published=doc.get("published", 0),
                   skipped=doc.get("skipped", 0),
                   exhausted=doc.get("exhausted", False))


class JournalBackfill:
    """Bounded, idempotent re-publication of a journal window.

    Walks the medium's *full* retained history (snapshot checkpoints
    do not hide frames), filters entries by op and collection, and
    hands each to ``publish`` — typically an adapter that pushes the
    record through a newly registered stream or filter.  Progress
    lives in a :class:`BackfillCheckpoint`: re-running with the
    returned checkpoint resumes exactly where the last batch stopped
    and never re-publishes an entry, so a crashed backfill is safe to
    restart.  Damaged frames are skipped (they are the recovery scan's
    business, already accounted there).
    """

    def __init__(self, medium: StorageMedium, *,
                 ops: Iterable[str] = ("ingest",),
                 collection: str | None = None):
        self.medium = medium
        self.ops = frozenset(ops)
        # Batched runs journal composite ``ingest_batch`` frames; a
        # backfill asking for ingests must see those records too, each
        # expanded to a synthetic singleton entry so ``publish``
        # consumers keep their one-document contract.
        if "ingest" in self.ops:
            self.ops |= {"ingest_batch"}
        self.collection = collection

    @staticmethod
    def _expand(entry: JournalEntry) -> list[JournalEntry]:
        if entry.op != "ingest_batch":
            return [entry]
        from repro.core.common.batch import RecordBatch
        batch = RecordBatch.from_payload(entry.payload["batch"])
        return [JournalEntry(seq=entry.seq, op="ingest",
                             collection=entry.collection,
                             payload={"document": document,
                                      "record_id": batch.record_ids[index]})
                for index, document in enumerate(batch.store_documents())]

    def _history(self) -> Iterable[JournalEntry]:
        data = self.medium.log_view()
        offset = 0
        while offset < len(data):
            status, body, next_offset = read_frame(data, offset)
            if status == FRAME_TORN or next_offset <= offset:
                return
            if status == FRAME_OK:
                try:
                    yield decode_entry(body)
                except CodecError:
                    pass
            offset = next_offset

    def window(self, start_seq: int = 0,
               end_seq: int | None = None) -> list[JournalEntry]:
        """The matching entries with ``start_seq <= seq < end_seq``."""
        return [entry for entry in self._history()
                if entry.seq >= start_seq
                and (end_seq is None or entry.seq < end_seq)
                and self._matches(entry)]

    def _matches(self, entry: JournalEntry) -> bool:
        return (entry.op in self.ops
                and (self.collection is None
                     or entry.collection == self.collection))

    def run(self, publish: Callable[[JournalEntry], None], *,
            start_seq: int = 0, end_seq: int | None = None,
            limit: int | None = None,
            checkpoint: BackfillCheckpoint | None = None,
            ) -> BackfillCheckpoint:
        """Publish up to ``limit`` matching entries from the window,
        resuming from ``checkpoint`` and returning the advanced one."""
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        checkpoint = checkpoint or BackfillCheckpoint(next_seq=start_seq)
        cursor = max(start_seq, checkpoint.next_seq)
        batch = 0
        for entry in self._history():
            if entry.seq < cursor:
                continue
            if end_seq is not None and entry.seq >= end_seq:
                break
            if limit is not None and batch >= limit:
                return checkpoint  # bounded: resume from next_seq later
            if self._matches(entry):
                for expanded in self._expand(entry):
                    publish(expanded)
                checkpoint.published += 1
                batch += 1
            else:
                checkpoint.skipped += 1
            checkpoint.next_seq = entry.seq + 1
        checkpoint.exhausted = True
        return checkpoint
