"""Durability tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning for the server's journal, admission control and breaker.

    The defaults are sized for the simulation scenarios: the intake
    queue is far above steady-state depth (a handful of records per
    drain tick), the checkpoint interval keeps replay short without
    snapshotting constantly, and the breaker trips fast enough that a
    dying medium stops eating records within one drain burst.
    """

    #: Journal entries accumulated before a snapshot+truncate checkpoint.
    checkpoint_interval: int = 1024
    #: Keep checkpointed frames on the medium as replayable history
    #: (journal-as-history): backs ``repro replay``, backfill, and the
    #: full-history fallback when the snapshot frame rots.  Turning it
    #: off restores the physical-truncation behaviour (smaller medium,
    #: no fallback).
    retain_history: bool = True
    #: Hard bound on the ingest intake queue.
    intake_capacity: int = 256
    #: Queue fraction at which watermark shedding starts.
    high_watermark: float = 0.75
    #: Queue fraction shedding drains down to.
    low_watermark: float = 0.5
    #: Seconds between intake-queue drain steps (plus storage latency).
    drain_interval_s: float = 0.02
    #: Consecutive storage write failures that trip the circuit breaker.
    breaker_trip_after: int = 5
    #: Seconds an open breaker waits before half-opening for a probe.
    breaker_reset_s: float = 30.0
    #: Apply attempts before a record is quarantined as poison.
    max_apply_attempts: int = 8
    #: Bound on the dead-letter quarantine (oldest evicted past it).
    quarantine_capacity: int = 256
    #: Use per-source weighted-fair intake queues instead of the single
    #: global FIFO (see :class:`repro.durability.fair.
    #: FairAdmissionController`).  Off by default — the global FIFO is
    #: the paper's baseline behaviour.
    fair_admission: bool = False
    #: ``((source, weight), ...)`` drain weights for fair admission;
    #: unlisted sources weigh 1.  Tuple-of-pairs keeps the config
    #: hashable/frozen.
    fair_weights: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.intake_capacity <= 0:
            raise ValueError("intake_capacity must be > 0")
        if not 0.0 < self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be > 0")
        if self.breaker_trip_after <= 0:
            raise ValueError("breaker_trip_after must be > 0")
        if self.max_apply_attempts <= 0:
            raise ValueError("max_apply_attempts must be > 0")
        for source, weight in self.fair_weights:
            if weight <= 0:
                raise ValueError(
                    f"fair weight for {source!r} must be > 0, got {weight}")
