"""Dead-letter quarantine for poison records.

Records that fail validation, or that keep failing to apply past
their retry budget, land here instead of wedging the intake queue or
being silently discarded: the payload is preserved for offline
inspection, the sender is acked (retrying a poison record cannot
help), and the drop is attributed in the trace taxonomy as
``quarantined``.  The quarantine is bounded; past capacity the oldest
entry is evicted and counted.
"""

from __future__ import annotations

from collections import deque
from typing import Any


class DeadLetterQuarantine:
    """Bounded FIFO of poison records with their failure reason."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._items: deque[dict[str, Any]] = deque()
        self.total = 0
        self.evictions = 0

    def put(self, *, record_id: str | None, reason: str, at: float,
            payload: dict[str, Any]) -> None:
        self._items.append({"record_id": record_id, "reason": reason,
                            "at": at, "payload": payload})
        self.total += 1
        while len(self._items) > self.capacity:
            self._items.popleft()
            self.evictions += 1

    def items(self) -> list[dict[str, Any]]:
        return list(self._items)

    def reasons(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self._items:
            counts[item["reason"]] = counts.get(item["reason"], 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._items)
