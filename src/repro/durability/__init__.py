"""Server durability: write-ahead journaling, crash recovery, and
overload protection.

The SenSocial server of the paper leans on MongoDB for persistence;
this package reproduces the *durability contract* that implies on top
of the in-memory docstore: a write-ahead journal with periodic
snapshot+truncate checkpoints (:mod:`~repro.durability.journal`), a
crash/restart recovery path that replays the journal tail and restores
the dedup window for exactly-once ingest, and overload protection —
bounded admission with priority-aware load shedding
(:mod:`~repro.durability.admission`), a circuit breaker around the
storage medium (:mod:`~repro.durability.breaker`), and a dead-letter
quarantine for poison records (:mod:`~repro.durability.quarantine`).

Everything is opt-in: a run without a :class:`ServerDurability`
attached is bit-identical to one on a build without this package.
"""

from repro.durability.admission import AdmissionController, IntakeItem
from repro.durability.breaker import CircuitBreaker
from repro.durability.codec import fingerprint, fingerprint_store
from repro.durability.config import DurabilityConfig
from repro.durability.controller import ServerDurability
from repro.durability.errors import (
    CodecError,
    CorruptFrameError,
    DurabilityError,
    SnapshotCorruptError,
    StorageWriteError,
)
from repro.durability.fair import FairAdmissionController
from repro.durability.journal import (
    JournalEntry,
    ReplayResult,
    StorageMedium,
    WriteAheadJournal,
    replay,
)
from repro.durability.quarantine import DeadLetterQuarantine
from repro.durability.recovery import (
    BackfillCheckpoint,
    FrameIssue,
    JournalBackfill,
    RecoveryScan,
    run_recovery_scan,
)

__all__ = [
    "AdmissionController",
    "BackfillCheckpoint",
    "CircuitBreaker",
    "CodecError",
    "CorruptFrameError",
    "DeadLetterQuarantine",
    "DurabilityConfig",
    "DurabilityError",
    "FairAdmissionController",
    "FrameIssue",
    "IntakeItem",
    "JournalBackfill",
    "JournalEntry",
    "RecoveryScan",
    "ReplayResult",
    "ServerDurability",
    "SnapshotCorruptError",
    "StorageMedium",
    "StorageWriteError",
    "WriteAheadJournal",
    "fingerprint",
    "fingerprint_store",
    "replay",
    "run_recovery_scan",
]
