"""The MQTT client.

Each simulated phone (and the SenSocial server component) owns one
client.  The client keeps its subscription callbacks, performs QoS-1
retransmission towards the broker, and sends keep-alive pings — the
periodic cost that the battery model charges as the price of push
connectivity.

Connectivity is supervised: a watchdog declares the connection lost
when nothing has been heard from the broker for 1.5 keep-alive
periods (the same grace the broker applies in the other direction) and
then reconnects with exponential backoff plus jitter.  On reconnection
the client re-sends unacknowledged QoS-1 publishes and, when the
broker reports no stored session, replays every subscription — so a
broker restart that wiped its state is survived transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.mqtt import packets
from repro.mqtt.errors import MqttProtocolError
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.obs import Healthcheck, Observability
from repro.simkit.scheduler import EventHandle, PeriodicTask
from repro.simkit.world import World

#: Signature of a subscription callback: (topic, payload).
MessageCallback = Callable[[str, Any], None]

#: Signature of a connection-state callback: (connected: bool).
ConnectionCallback = Callable[[bool], None]


@dataclass
class _PendingPublish:
    packet: packets.Publish
    retries_left: int
    timer: EventHandle | None = None
    on_ack: Callable[[], None] | None = None
    #: First-send instant (virtual clock), so the ack delay — the
    #: MQTT-publish→ack stage of the pipeline — can be measured.
    sent_at: float = 0.0


class MqttClient(Endpoint):
    """A single MQTT connection to the broker."""

    RETRY_INTERVAL = 5.0
    MAX_RETRIES = 5
    #: Silence (in keep-alive periods) before the watchdog declares the
    #: connection lost; matches the broker's expiry grace.
    WATCHDOG_GRACE = 1.5
    #: First reconnect delay; doubles per failed attempt.
    RECONNECT_BASE_S = 2.0
    #: Backoff ceiling, so a long outage is probed every ~30 s.
    RECONNECT_MAX_S = 30.0
    #: Jitter fraction added to each backoff (decorrelates a fleet of
    #: clients reconnecting after the same broker restart).
    RECONNECT_JITTER = 0.25

    def __init__(self, world: World, network: Network, *, client_id: str,
                 address: str, broker_address: str = "mqtt-broker",
                 keepalive: float = 60.0, radio=None,
                 auto_reconnect: bool = True):
        self._world = world
        self._network = network
        self.client_id = client_id
        self.address = address
        self.broker_address = broker_address
        self.keepalive = keepalive
        self.radio = radio
        self.auto_reconnect = auto_reconnect
        self.connected = False
        self._callbacks: dict[str, list[MessageCallback]] = {}
        self._subscription_qos: dict[str, int] = {}
        #: Shard partition spec per topic filter, replayed alongside
        #: the qos when a lost broker session forces re-subscription.
        self._subscription_partition: dict[str, dict] = {}
        self._pending: dict[int, _PendingPublish] = {}
        self._next_packet_id = 1
        self._ping_task: PeriodicTask | None = None
        self._watchdog_task: PeriodicTask | None = None
        self._seen_inbound: set[int] = set()
        self._connection_callbacks: list[ConnectionCallback] = []
        self._reconnect_rng = world.rng(f"mqtt-reconnect-{client_id}")
        self._reconnect_handle: EventHandle | None = None
        self._reconnect_backoff = self.RECONNECT_BASE_S
        self._awaiting_connack = False
        self._clean_session = True
        self._will_topic: str | None = None
        self._will_payload: Any = None
        self.publishes_sent = 0
        self.publishes_received = 0
        #: Resilience counters, surfaced through :meth:`health`.
        self.connection_losses = 0
        self.reconnects = 0
        self.last_inbound = world.now
        self.last_reconnected_at: float | None = None
        #: Observability hub (``None`` when tracing/telemetry is off).
        self.obs = Observability.of(world)
        if not network.is_registered(address):
            network.register(address, self)

    # -- connection lifecycle -----------------------------------------

    def connect(self, clean_session: bool = True,
                will_topic: str | None = None, will_payload: Any = None) -> None:
        """Open the session; CONNACK arrives asynchronously."""
        self._clean_session = clean_session
        self._will_topic = will_topic
        self._will_payload = will_payload
        self._network.send(self.address, self.broker_address, packets.Connect(
            client_id=self.client_id, clean_session=clean_session,
            keepalive=self.keepalive, will_topic=will_topic,
            will_payload=will_payload))
        self.connected = True  # optimistic; simulation has no refusals
        self.last_inbound = self._world.now
        if self._ping_task is None and self.keepalive > 0:
            self._ping_task = self._world.scheduler.every(
                self.keepalive, self._ping, delay=self.keepalive)
        if (self._watchdog_task is None and self.auto_reconnect
                and self.keepalive > 0):
            self._watchdog_task = self._world.scheduler.every(
                self.keepalive, self._watchdog_check, delay=self.keepalive)

    def disconnect(self) -> None:
        """Close the session cleanly."""
        self._cancel_reconnect()
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            self._watchdog_task = None
        if not self.connected:
            return
        self._network.send(self.address, self.broker_address, packets.Disconnect())
        self.connected = False
        if self._ping_task is not None:
            self._ping_task.cancel()
            self._ping_task = None
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        self._notify_connection(False)

    def on_connection_change(self, callback: ConnectionCallback) -> None:
        """Register a callback fired on every connect/disconnect edge.

        The mobile middleware hooks this to flush its store-and-forward
        outbox the moment connectivity returns.
        """
        self._connection_callbacks.append(callback)

    def health(self) -> dict[str, Any]:
        """Connectivity status for degraded-operation dashboards.

        Uniform :class:`repro.obs.Healthcheck` schema (``status`` /
        ``detail`` / ``counters``) with the counters also flattened at
        the top level for older consumers.
        """
        status = Healthcheck.status_for(self.connected,
                                        backlog=len(self._pending))
        return Healthcheck.build(
            status=status,
            detail=(f"mqtt client {self.client_id}: "
                    f"{'connected' if self.connected else 'disconnected'}, "
                    f"{len(self._pending)} unacked QoS-1"),
            counters={
                "pending_qos1": len(self._pending),
                "publishes_sent": self.publishes_sent,
                "publishes_received": self.publishes_received,
                "connection_losses": self.connection_losses,
                "reconnects": self.reconnects,
            },
            client_id=self.client_id,
            connected=self.connected,
            last_seen=self.last_inbound,
        )

    # -- pub/sub ------------------------------------------------------

    def subscribe(self, topic_filter: str, callback: MessageCallback,
                  qos: int = 1, partition: dict | None = None) -> None:
        """Register ``callback`` for messages matching ``topic_filter``.

        ``partition`` is an optional shard partition spec (see
        :class:`repro.mqtt.packets.Subscribe`); re-subscribing to the
        same filter replaces both callbacks and partition — which is
        how a shard worker narrows or widens its slice of a wildcard
        topic after a rebalance.
        """
        validate_filter(topic_filter)
        self._require_connected()
        if partition is not None:
            # A partition change is a *replacement* subscription: the
            # old callbacks would double-fire once the broker rebinds
            # the filter to the new ring slice.
            self._callbacks[topic_filter] = [callback]
        else:
            self._callbacks.setdefault(topic_filter, []).append(callback)
        self._subscription_qos[topic_filter] = qos
        if partition is None:
            self._subscription_partition.pop(topic_filter, None)
        else:
            self._subscription_partition[topic_filter] = partition
        self._network.send(self.address, self.broker_address, packets.Subscribe(
            packet_id=self._take_packet_id(), topic_filter=topic_filter,
            qos=qos, partition=partition))

    def unsubscribe(self, topic_filter: str) -> None:
        """Drop every callback for ``topic_filter``."""
        self._require_connected()
        self._callbacks.pop(topic_filter, None)
        self._subscription_qos.pop(topic_filter, None)
        self._subscription_partition.pop(topic_filter, None)
        self._network.send(self.address, self.broker_address, packets.Unsubscribe(
            packet_id=self._take_packet_id(), topic_filter=topic_filter))

    def publish(self, topic: str, payload: Any, qos: int = 0,
                retain: bool = False, on_ack: Callable[[], None] | None = None) -> None:
        """Publish ``payload`` on ``topic``.

        With QoS 1 the packet is retransmitted until the broker
        acknowledges it, surviving transient partitions injected by
        :meth:`repro.net.Network.set_down`; unacknowledged packets are
        also replayed after an automatic reconnection.
        """
        validate_topic(topic)
        self._require_connected()
        packet = packets.Publish(topic=topic, payload=payload, qos=qos, retain=retain)
        self.publishes_sent += 1
        if self.obs is not None:
            self.obs.telemetry.counter("mqtt_publishes",
                                       client=self.client_id, qos=qos).inc()
        if qos >= 1:
            packet.packet_id = self._take_packet_id()
            pending = _PendingPublish(packet, self.MAX_RETRIES, on_ack=on_ack,
                                      sent_at=self._world.now)
            self._pending[packet.packet_id] = pending
            pending.timer = self._world.scheduler.schedule(
                self.RETRY_INTERVAL, self._retry, packet.packet_id)
        self._network.send(self.address, self.broker_address, packet)

    def publish_batch(self, topic: str, payloads, qos: int = 0,
                      retain: bool = False,
                      on_ack: Callable[[], None] | None = None) -> None:
        """Publish N payloads as one columnar batch envelope.

        The broker walks the subscription trie once for the whole
        envelope instead of once per payload; subscribers receive the
        envelope dict (``batch_wire`` marker, ``n``, ``payloads``) and
        unpack it themselves.  QoS applies to the envelope: one PUBACK
        covers all members, and a retransmission replays them all —
        receivers dedup members, not packets.
        """
        payloads = list(payloads)
        envelope = {"batch_wire": 1, "n": len(payloads),
                    "payloads": payloads}
        self.publish(topic, envelope, qos=qos, retain=retain, on_ack=on_ack)

    def subscription_filters(self) -> list[str]:
        return sorted(self._callbacks)

    # -- endpoint interface -------------------------------------------

    def deliver(self, message: Message) -> None:
        self.last_inbound = self._world.now
        packet = message.payload
        if isinstance(packet, packets.Publish):
            self._on_publish(packet)
        elif isinstance(packet, packets.PubAck):
            self._on_puback(packet)
        elif isinstance(packet, packets.ConnAck):
            self._on_connack(packet)
        elif isinstance(packet, (packets.SubAck,
                                 packets.UnsubAck, packets.PingResp)):
            pass  # session bookkeeping only; nothing to do in-model
        else:
            raise MqttProtocolError(f"client cannot handle {type(packet).__name__}")

    # -- reconnect machinery ------------------------------------------

    def _watchdog_check(self) -> None:
        if not self.connected or self.keepalive <= 0:
            return
        if (self._world.now - self.last_inbound
                > self.keepalive * self.WATCHDOG_GRACE):
            self._connection_lost()

    def _connection_lost(self) -> None:
        """The broker went silent: drop to disconnected and start the
        backoff loop (if auto-reconnect is on)."""
        if not self.connected:
            return
        self.connected = False
        self.connection_losses += 1
        if self.obs is not None:
            self.obs.telemetry.counter("mqtt_connection_losses",
                                       client=self.client_id).inc()
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None
        self._notify_connection(False)
        if self.auto_reconnect:
            self._reconnect_backoff = self.RECONNECT_BASE_S
            self._schedule_reconnect()

    def _schedule_reconnect(self) -> None:
        delay = self._reconnect_backoff * (
            1.0 + self._reconnect_rng.uniform(0.0, self.RECONNECT_JITTER))
        self._reconnect_backoff = min(self._reconnect_backoff * 2.0,
                                      self.RECONNECT_MAX_S)
        self._reconnect_handle = self._world.scheduler.schedule(
            delay, self._attempt_reconnect)

    def _attempt_reconnect(self) -> None:
        if self.connected:
            return
        self._awaiting_connack = True
        self._network.send(self.address, self.broker_address, packets.Connect(
            client_id=self.client_id, clean_session=self._clean_session,
            keepalive=self.keepalive, will_topic=self._will_topic,
            will_payload=self._will_payload))
        # If the CONNECT (or its CONNACK) is eaten, try again later.
        self._schedule_reconnect()

    def _on_connack(self, packet: packets.ConnAck) -> None:
        if not self._awaiting_connack:
            return  # initial optimistic connect; nothing to restore
        self._awaiting_connack = False
        self._cancel_reconnect()
        self.connected = True
        self.reconnects += 1
        self.last_reconnected_at = self._world.now
        if self.obs is not None:
            self.obs.telemetry.counter("mqtt_reconnects",
                                       client=self.client_id).inc()
        self._reconnect_backoff = self.RECONNECT_BASE_S
        if not packet.session_present:
            # The broker lost our session (restart with wiped state, or
            # expiry of a clean session): replay every subscription.
            self._seen_inbound.clear()
            for topic_filter in sorted(self._subscription_qos):
                self._network.send(
                    self.address, self.broker_address,
                    packets.Subscribe(
                        packet_id=self._take_packet_id(),
                        topic_filter=topic_filter,
                        qos=self._subscription_qos[topic_filter],
                        partition=self._subscription_partition.get(
                            topic_filter)))
        for packet_id in sorted(self._pending):
            pending = self._pending[packet_id]
            pending.retries_left = self.MAX_RETRIES
            pending.packet.duplicate = True
            self._network.send(self.address, self.broker_address, pending.packet)
            pending.timer = self._world.scheduler.schedule(
                self.RETRY_INTERVAL, self._retry, packet_id)
        self._notify_connection(True)

    def _cancel_reconnect(self) -> None:
        if self._reconnect_handle is not None:
            self._reconnect_handle.cancel()
            self._reconnect_handle = None
        self._awaiting_connack = False

    def _notify_connection(self, connected: bool) -> None:
        for callback in list(self._connection_callbacks):
            callback(connected)

    # -- internals ----------------------------------------------------

    def _on_publish(self, packet: packets.Publish) -> None:
        if packet.qos >= 1 and packet.packet_id is not None:
            self._network.send(self.address, self.broker_address,
                               packets.PubAck(packet.packet_id))
            if packet.packet_id in self._seen_inbound and packet.duplicate:
                return  # de-duplicate QoS-1 redelivery
            self._seen_inbound.add(packet.packet_id)
        self.publishes_received += 1
        for topic_filter in sorted(self._callbacks):
            if topic_matches(topic_filter, packet.topic):
                for callback in list(self._callbacks[topic_filter]):
                    callback(packet.topic, packet.payload)

    def _on_puback(self, packet: packets.PubAck) -> None:
        pending = self._pending.pop(packet.packet_id, None)
        if pending is not None:
            if pending.timer is not None:
                pending.timer.cancel()
            if self.obs is not None:
                self.obs.telemetry.timer(
                    "mqtt_ack_delay", client=self.client_id).stop(
                        pending.sent_at, self._world.now)
            if pending.on_ack is not None:
                pending.on_ack()

    def _retry(self, packet_id: int) -> None:
        pending = self._pending.get(packet_id)
        if pending is None or not self.connected:
            return
        if pending.retries_left <= 0:
            # Keep the packet for replay after a reconnection instead
            # of dropping it: the watchdog will notice the dead link.
            return
        pending.retries_left -= 1
        pending.packet.duplicate = True
        self._network.send(self.address, self.broker_address, pending.packet)
        pending.timer = self._world.scheduler.schedule(
            self.RETRY_INTERVAL, self._retry, packet_id)

    def _ping(self) -> None:
        if self.connected:
            self._network.send(self.address, self.broker_address, packets.PingReq())

    def _take_packet_id(self) -> int:
        packet_id = self._next_packet_id
        self._next_packet_id += 1
        return packet_id

    def _require_connected(self) -> None:
        if not self.connected:
            raise MqttProtocolError(f"client {self.client_id!r} is not connected")
