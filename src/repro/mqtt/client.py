"""The MQTT client.

Each simulated phone (and the SenSocial server component) owns one
client.  The client keeps its subscription callbacks, performs QoS-1
retransmission towards the broker, and sends keep-alive pings — the
periodic cost that the battery model charges as the price of push
connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.mqtt import packets
from repro.mqtt.errors import MqttProtocolError
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.simkit.scheduler import EventHandle, PeriodicTask
from repro.simkit.world import World

#: Signature of a subscription callback: (topic, payload).
MessageCallback = Callable[[str, Any], None]


@dataclass
class _PendingPublish:
    packet: packets.Publish
    retries_left: int
    timer: EventHandle | None = None
    on_ack: Callable[[], None] | None = None


class MqttClient(Endpoint):
    """A single MQTT connection to the broker."""

    RETRY_INTERVAL = 5.0
    MAX_RETRIES = 5

    def __init__(self, world: World, network: Network, *, client_id: str,
                 address: str, broker_address: str = "mqtt-broker",
                 keepalive: float = 60.0, radio=None):
        self._world = world
        self._network = network
        self.client_id = client_id
        self.address = address
        self.broker_address = broker_address
        self.keepalive = keepalive
        self.radio = radio
        self.connected = False
        self._callbacks: dict[str, list[MessageCallback]] = {}
        self._pending: dict[int, _PendingPublish] = {}
        self._next_packet_id = 1
        self._ping_task: PeriodicTask | None = None
        self._seen_inbound: set[int] = set()
        self.publishes_sent = 0
        self.publishes_received = 0
        if not network.is_registered(address):
            network.register(address, self)

    # -- connection lifecycle -----------------------------------------

    def connect(self, clean_session: bool = True,
                will_topic: str | None = None, will_payload: Any = None) -> None:
        """Open the session; CONNACK arrives asynchronously."""
        self._network.send(self.address, self.broker_address, packets.Connect(
            client_id=self.client_id, clean_session=clean_session,
            keepalive=self.keepalive, will_topic=will_topic,
            will_payload=will_payload))
        self.connected = True  # optimistic; simulation has no refusals
        if self._ping_task is None and self.keepalive > 0:
            self._ping_task = self._world.scheduler.every(
                self.keepalive, self._ping, delay=self.keepalive)

    def disconnect(self) -> None:
        """Close the session cleanly."""
        if not self.connected:
            return
        self._network.send(self.address, self.broker_address, packets.Disconnect())
        self.connected = False
        if self._ping_task is not None:
            self._ping_task.cancel()
            self._ping_task = None
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # -- pub/sub ------------------------------------------------------

    def subscribe(self, topic_filter: str, callback: MessageCallback,
                  qos: int = 1) -> None:
        """Register ``callback`` for messages matching ``topic_filter``."""
        validate_filter(topic_filter)
        self._require_connected()
        self._callbacks.setdefault(topic_filter, []).append(callback)
        self._network.send(self.address, self.broker_address, packets.Subscribe(
            packet_id=self._take_packet_id(), topic_filter=topic_filter, qos=qos))

    def unsubscribe(self, topic_filter: str) -> None:
        """Drop every callback for ``topic_filter``."""
        self._require_connected()
        self._callbacks.pop(topic_filter, None)
        self._network.send(self.address, self.broker_address, packets.Unsubscribe(
            packet_id=self._take_packet_id(), topic_filter=topic_filter))

    def publish(self, topic: str, payload: Any, qos: int = 0,
                retain: bool = False, on_ack: Callable[[], None] | None = None) -> None:
        """Publish ``payload`` on ``topic``.

        With QoS 1 the packet is retransmitted until the broker
        acknowledges it, surviving transient partitions injected by
        :meth:`repro.net.Network.set_down`.
        """
        validate_topic(topic)
        self._require_connected()
        packet = packets.Publish(topic=topic, payload=payload, qos=qos, retain=retain)
        self.publishes_sent += 1
        if qos >= 1:
            packet.packet_id = self._take_packet_id()
            pending = _PendingPublish(packet, self.MAX_RETRIES, on_ack=on_ack)
            self._pending[packet.packet_id] = pending
            pending.timer = self._world.scheduler.schedule(
                self.RETRY_INTERVAL, self._retry, packet.packet_id)
        self._network.send(self.address, self.broker_address, packet)

    def subscription_filters(self) -> list[str]:
        return sorted(self._callbacks)

    # -- endpoint interface -------------------------------------------

    def deliver(self, message: Message) -> None:
        packet = message.payload
        if isinstance(packet, packets.Publish):
            self._on_publish(packet)
        elif isinstance(packet, packets.PubAck):
            self._on_puback(packet)
        elif isinstance(packet, (packets.ConnAck, packets.SubAck,
                                 packets.UnsubAck, packets.PingResp)):
            pass  # session bookkeeping only; nothing to do in-model
        else:
            raise MqttProtocolError(f"client cannot handle {type(packet).__name__}")

    # -- internals ----------------------------------------------------

    def _on_publish(self, packet: packets.Publish) -> None:
        if packet.qos >= 1 and packet.packet_id is not None:
            self._network.send(self.address, self.broker_address,
                               packets.PubAck(packet.packet_id))
            if packet.packet_id in self._seen_inbound and packet.duplicate:
                return  # de-duplicate QoS-1 redelivery
            self._seen_inbound.add(packet.packet_id)
        self.publishes_received += 1
        for topic_filter in sorted(self._callbacks):
            if topic_matches(topic_filter, packet.topic):
                for callback in list(self._callbacks[topic_filter]):
                    callback(packet.topic, packet.payload)

    def _on_puback(self, packet: packets.PubAck) -> None:
        pending = self._pending.pop(packet.packet_id, None)
        if pending is not None:
            if pending.timer is not None:
                pending.timer.cancel()
            if pending.on_ack is not None:
                pending.on_ack()

    def _retry(self, packet_id: int) -> None:
        pending = self._pending.get(packet_id)
        if pending is None or not self.connected:
            return
        if pending.retries_left <= 0:
            self._pending.pop(packet_id, None)
            return
        pending.retries_left -= 1
        pending.packet.duplicate = True
        self._network.send(self.address, self.broker_address, pending.packet)
        pending.timer = self._world.scheduler.schedule(
            self.RETRY_INTERVAL, self._retry, packet_id)

    def _ping(self) -> None:
        if self.connected:
            self._network.send(self.address, self.broker_address, packets.PingReq())

    def _take_packet_id(self) -> int:
        packet_id = self._next_packet_id
        self._next_packet_id += 1
        return packet_id

    def _require_connected(self) -> None:
        if not self.connected:
            raise MqttProtocolError(f"client {self.client_id!r} is not connected")
