"""MQTT control packets.

Packets travel as :class:`repro.net.Message` payloads.  Only the fields
the simulation needs are modelled; sizes are estimated from payloads so
radio energy accounting stays realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Connect:
    client_id: str
    clean_session: bool = True
    keepalive: float = 60.0
    will_topic: str | None = None
    will_payload: Any = None


@dataclass
class ConnAck:
    session_present: bool = False
    return_code: int = 0


@dataclass
class Subscribe:
    packet_id: int
    topic_filter: str
    qos: int = 0
    #: Optional shard partition spec (see :mod:`repro.cluster.ring`):
    #: ``{"members": [...], "vnodes": N, "owner": shard_id,
    #: "key_level": i}``.  The broker extracts topic level ``i`` of
    #: each matching PUBLISH, evaluates the consistent-hash ring the
    #: spec describes, and delivers only when ``owner`` owns the key —
    #: so a shard subscribed to a wildcard filter receives exactly its
    #: partition's topics.  ``None`` (the default) routes classically.
    partition: dict | None = None

    def __repr__(self) -> str:
        # Wire sizes are estimated from ``repr`` (see
        # :func:`repro.net.message.estimate_size`): an unpartitioned
        # SUBSCRIBE must cost exactly what it did before the partition
        # field existed, while a partitioned one pays for its spec.
        base = (f"Subscribe(packet_id={self.packet_id!r}, "
                f"topic_filter={self.topic_filter!r}, qos={self.qos!r}")
        if self.partition is None:
            return base + ")"
        return base + f", partition={self.partition!r})"


@dataclass
class SubAck:
    packet_id: int
    granted_qos: int = 0


@dataclass
class Unsubscribe:
    packet_id: int
    topic_filter: str


@dataclass
class UnsubAck:
    packet_id: int


@dataclass
class Publish:
    topic: str
    payload: Any
    qos: int = 0
    retain: bool = False
    packet_id: int | None = None
    duplicate: bool = False
    headers: dict[str, Any] = field(default_factory=dict)


@dataclass
class PubAck:
    packet_id: int


@dataclass
class PingReq:
    pass


@dataclass
class PingResp:
    pass


@dataclass
class Disconnect:
    pass
