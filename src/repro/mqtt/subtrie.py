"""Topic-level tries for broker routing and retained-message lookup.

The broker's original routing path scanned every session × subscription
per PUBLISH and re-split each topic filter inside ``topic_matches`` —
O(S·F·L) string work per message.  These tries replace that with work
proportional to the *topic's level count* plus the number of actual
matches:

* :class:`SubscriptionTrie` — one node per filter level; ``+`` is an
  ordinary child keyed ``"+"`` that the matcher always follows, and a
  filter ending in ``#`` registers its subscriber on the parent node's
  ``hash_subscribers`` table (MQTT 3.1.1: ``a/#`` matches ``a`` itself
  and everything below it).  ``add``/``discard`` maintain the structure
  incrementally as sessions subscribe, unsubscribe and tear down.
* :class:`RetainedTrie` — a plain topic trie (no wildcards in stored
  names) matched *against a filter*, used to deliver retained messages
  to a new subscription without scanning the whole retained table.

Both tries count the work they do (nodes visited + entries considered)
in ``checks``, which the perf harness reads to prove routing work per
publish is sublinear in the total subscription count.
"""

from __future__ import annotations

from typing import Any, Iterator


class _SubNode:
    """One filter level.  ``subscribers`` holds filters terminating
    here; ``hash_subscribers`` holds filters whose next (final) level
    is ``#``."""

    __slots__ = ("children", "subscribers", "hash_subscribers")

    def __init__(self):
        self.children: dict[str, _SubNode] = {}
        self.subscribers: dict[str, int] = {}
        self.hash_subscribers: dict[str, int] = {}

    def is_empty(self) -> bool:
        return (not self.children and not self.subscribers
                and not self.hash_subscribers)


class SubscriptionTrie:
    """client-id → qos tables hung off a trie of filter levels."""

    def __init__(self):
        self._root = _SubNode()
        self._filters = 0
        #: Cumulative match work: nodes visited plus subscriber entries
        #: considered.  The perf harness diffs this across publishes.
        self.checks = 0

    def __len__(self) -> int:
        """Number of (client, filter) registrations currently held."""
        return self._filters

    # -- maintenance --------------------------------------------------

    def add(self, filter_levels: list[str], client_id: str, qos: int) -> None:
        """Register (or re-register with a new qos) one subscription.

        ``filter_levels`` must already be validated
        (:func:`repro.mqtt.topics.validate_filter`).
        """
        node, table = self._terminal(filter_levels, create=True)
        if client_id not in table:
            self._filters += 1
        table[client_id] = qos

    def discard(self, filter_levels: list[str], client_id: str) -> None:
        """Remove one subscription; prunes now-empty branches."""
        path: list[tuple[_SubNode, str]] = []
        node = self._root
        levels = filter_levels[:-1] if filter_levels[-1] == "#" else filter_levels
        for level in levels:
            child = node.children.get(level)
            if child is None:
                return
            path.append((node, level))
            node = child
        table = (node.hash_subscribers if filter_levels[-1] == "#"
                 else node.subscribers)
        if table.pop(client_id, None) is None:
            return
        self._filters -= 1
        for parent, level in reversed(path):
            if not node.is_empty():
                break
            del parent.children[level]
            node = parent

    def _terminal(self, filter_levels: list[str],
                  create: bool) -> tuple[_SubNode, dict[str, int]]:
        node = self._root
        hash_terminal = filter_levels[-1] == "#"
        levels = filter_levels[:-1] if hash_terminal else filter_levels
        for level in levels:
            child = node.children.get(level)
            if child is None:
                if not create:
                    raise KeyError(level)
                child = _SubNode()
                node.children[level] = child
            node = child
        return node, (node.hash_subscribers if hash_terminal
                      else node.subscribers)

    # -- matching -----------------------------------------------------

    def match(self, topic_levels: list[str]) -> dict[str, int]:
        """``client_id → max matching filter qos`` for a topic name.

        Work is proportional to the trie paths the topic touches, not
        to the total number of subscriptions.
        """
        matched: dict[str, int] = {}
        checks = self._collect(self._root, topic_levels, 0, matched)
        self.checks += checks
        return matched

    def _collect(self, node: _SubNode, levels: list[str], index: int,
                 matched: dict[str, int]) -> int:
        checks = 1  # this node
        # ``#`` at this depth matches the remaining levels — including
        # none of them (``a/#`` matches ``a``).
        if node.hash_subscribers:
            checks += len(node.hash_subscribers)
            _merge(matched, node.hash_subscribers)
        if index == len(levels):
            if node.subscribers:
                checks += len(node.subscribers)
                _merge(matched, node.subscribers)
            return checks
        level = levels[index]
        child = node.children.get(level)
        if child is not None:
            checks += self._collect(child, levels, index + 1, matched)
        plus = node.children.get("+")
        if plus is not None:
            checks += self._collect(plus, levels, index + 1, matched)
        return checks


def _merge(matched: dict[str, int], table: dict[str, int]) -> None:
    for client_id, qos in table.items():
        best = matched.get(client_id)
        if best is None or qos > best:
            matched[client_id] = qos


class _TopicNode:
    __slots__ = ("children", "value")

    def __init__(self):
        self.children: dict[str, _TopicNode] = {}
        self.value: Any = None  # None = no retained message here


class RetainedTrie:
    """Retained messages keyed by topic, matched against a filter."""

    def __init__(self):
        self._root = _TopicNode()
        self.checks = 0

    def set(self, topic_levels: list[str], value: Any) -> None:
        node = self._root
        for level in topic_levels:
            node = node.children.setdefault(level, _TopicNode())
        node.value = value

    def delete(self, topic_levels: list[str]) -> None:
        path: list[tuple[_TopicNode, str]] = []
        node = self._root
        for level in topic_levels:
            child = node.children.get(level)
            if child is None:
                return
            path.append((node, level))
            node = child
        node.value = None
        for parent, level in reversed(path):
            if node.children or node.value is not None:
                break
            del parent.children[level]
            node = parent

    def clear(self) -> None:
        self._root = _TopicNode()

    def match_filter(self, filter_levels: list[str]) -> list[tuple[str, Any]]:
        """``(topic, value)`` pairs matching a subscription filter,
        sorted by topic (the broker's historical delivery order)."""
        found: list[tuple[str, Any]] = []
        self._walk(self._root, filter_levels, 0, [], found)
        found.sort(key=lambda pair: pair[0])
        return found

    def _walk(self, node: _TopicNode, pattern: list[str], index: int,
              prefix: list[str], found: list[tuple[str, Any]]) -> None:
        self.checks += 1
        if index == len(pattern):
            if node.value is not None:
                found.append(("/".join(prefix), node.value))
            return
        level = pattern[index]
        if level == "#":
            # ``#`` matches the parent level itself and every child.
            self._subtree(node, prefix, found)
            return
        if level == "+":
            for child_level, child in node.children.items():
                prefix.append(child_level)
                self._walk(child, pattern, index + 1, prefix, found)
                prefix.pop()
            return
        child = node.children.get(level)
        if child is not None:
            prefix.append(level)
            self._walk(child, pattern, index + 1, prefix, found)
            prefix.pop()

    def _subtree(self, node: _TopicNode, prefix: list[str],
                 found: list[tuple[str, Any]]) -> None:
        self.checks += 1
        if node.value is not None:
            found.append(("/".join(prefix), node.value))
        for level, child in node.children.items():
            prefix.append(level)
            self._subtree(child, prefix, found)
            prefix.pop()

    def items(self) -> Iterator[tuple[str, Any]]:
        """All retained (topic, value) pairs, unordered."""
        stack: list[tuple[_TopicNode, list[str]]] = [(self._root, [])]
        while stack:
            node, prefix = stack.pop()
            if node.value is not None:
                yield "/".join(prefix), node.value
            for level, child in node.children.items():
                stack.append((child, prefix + [level]))
