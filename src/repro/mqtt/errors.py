"""MQTT substrate errors."""


class MqttError(Exception):
    """Base class for MQTT simulation errors."""


class MqttTopicError(MqttError):
    """Raised for malformed topic names or topic filters."""


class MqttProtocolError(MqttError):
    """Raised when a packet violates the protocol state machine."""
