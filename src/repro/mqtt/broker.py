"""The MQTT broker.

One broker instance lives on the server host.  It keeps per-client
sessions (subscriptions, offline queues for persistent sessions),
retained messages, and performs QoS-1 redelivery towards clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.mqtt import packets
from repro.mqtt.errors import MqttProtocolError
from repro.mqtt.subtrie import RetainedTrie, SubscriptionTrie
from repro.mqtt.topics import validate_filter, validate_topic
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.simkit.scheduler import EventHandle
from repro.simkit.world import World


@dataclass
class _Subscription:
    topic_filter: str
    qos: int
    #: Shard partition spec (see :class:`repro.mqtt.packets.Subscribe`)
    #: or ``None`` for a classic subscription.
    partition: dict | None = None


@dataclass
class _Session:
    client_id: str
    address: str
    clean_session: bool
    keepalive: float
    connected: bool = True
    subscriptions: dict[str, _Subscription] = field(default_factory=dict)
    #: True while any subscription carries a partition spec — lets the
    #: routing hot loop skip partition checks for ordinary clients.
    has_partitioned: bool = False
    offline_queue: list[packets.Publish] = field(default_factory=list)
    pending_acks: dict[int, "_PendingDelivery"] = field(default_factory=dict)
    last_seen: float = 0.0
    next_packet_id: int = 1
    will_topic: str | None = None
    will_payload: Any = None


@dataclass
class _PendingDelivery:
    publish: packets.Publish
    retries_left: int
    timer: EventHandle | None = None


class MqttBroker(Endpoint):
    """Mosquitto stand-in: sessions, retained messages, QoS-1 redelivery."""

    #: Seconds before an unacknowledged QoS-1 delivery is retransmitted.
    RETRY_INTERVAL = 5.0
    #: Retransmissions before giving up and queueing for reconnection.
    MAX_RETRIES = 5
    #: Offline queue cap per persistent session.
    MAX_QUEUED = 1000
    #: A session with no traffic for this many keep-alive periods is
    #: declared dead (MQTT 3.1.1 mandates 1.5).
    KEEPALIVE_GRACE = 1.5
    #: How often the broker sweeps for dead sessions.
    EXPIRY_SWEEP_S = 30.0

    def __init__(self, world: World, network: Network, address: str = "mqtt-broker"):
        self._world = world
        self._network = network
        self.address = network.register(address, self)
        self._sessions: dict[str, _Session] = {}
        self._address_to_client: dict[str, str] = {}
        self._retained: dict[str, packets.Publish] = {}
        #: Wildcard-aware subscription trie: routing work per PUBLISH is
        #: O(topic levels + matches), not O(sessions × subscriptions).
        self._subscriptions = SubscriptionTrie()
        #: Topic trie over the retained table, so a new subscription
        #: finds its retained messages without scanning every topic.
        self._retained_trie = RetainedTrie()
        #: Per-topic cached counter handles (when observability is on),
        #: so the routing hot loop never re-resolves registry entries.
        self._obs_counters: dict[tuple[str, str], Any] = {}
        self.messages_routed = 0
        self.publishes_received = 0
        #: Batch envelopes routed (one trie walk fans out N records).
        self.batch_publishes = 0
        #: Logical records those envelopes carried — with
        #: ``publishes_received`` this yields trie routings *per
        #: record*, the batching win the perf gate asserts on.
        self.batched_records_routed = 0
        #: Deliveries suppressed by shard partition specs (shard-aware
        #: topic routing; see ``_partition_allows``).
        self.partition_filtered = 0
        #: SUBSCRIBEs rejected for carrying a ring older than the one
        #: already bound to the same filter (elastic lifecycle guard).
        self.partition_stale_rejected = 0
        #: Consistent-hash rings rebuilt from partition specs, cached
        #: per distinct membership.
        self._ring_cache: dict[tuple, Any] = {}
        self.sessions_expired = 0
        self.running = True
        self.crashes = 0
        self.restarts = 0
        self._obs = world.component_or_none("obs")
        world.scheduler.every(self.EXPIRY_SWEEP_S, self._expire_dead_sessions,
                              delay=self.EXPIRY_SWEEP_S)

    # -- failure injection --------------------------------------------

    def crash(self, *, preserve_persistent_sessions: bool = True) -> None:
        """The broker process dies without warning.

        While crashed, the broker's network address is partitioned, so
        every packet towards it is dropped (and counted) by the
        network.  Persistent sessions model Mosquitto's on-disk store:
        with ``preserve_persistent_sessions`` their subscriptions,
        offline queues and the retained-message table survive the
        restart, and in-flight QoS-1 deliveries are re-queued; without
        it the broker comes back completely amnesiac and clients must
        re-CONNECT and re-SUBSCRIBE from scratch (which the client's
        reconnect path does when CONNACK says ``session_present=False``).
        """
        if not self.running:
            return
        self.running = False
        self.crashes += 1
        self._network.set_down(self.address)
        for session in list(self._sessions.values()):
            for pending in session.pending_acks.values():
                if pending.timer is not None:
                    pending.timer.cancel()
                if not session.clean_session and preserve_persistent_sessions:
                    session.offline_queue.append(pending.publish)
            session.pending_acks.clear()
            session.connected = False
        if preserve_persistent_sessions:
            for client_id, session in self._sessions.items():
                if session.clean_session:
                    self._drop_subscriptions(session)
            self._sessions = {client_id: session
                              for client_id, session in self._sessions.items()
                              if not session.clean_session}
            self._address_to_client = {
                address: client_id
                for address, client_id in self._address_to_client.items()
                if client_id in self._sessions}
        else:
            self._sessions.clear()
            self._address_to_client.clear()
            self._retained.clear()
            self._subscriptions = SubscriptionTrie()
            self._retained_trie.clear()

    def restart(self) -> None:
        """The broker process comes back up and accepts traffic again."""
        if self.running:
            return
        self.running = True
        self.restarts += 1
        self._network.set_down(self.address, False)

    # -- endpoint interface -------------------------------------------

    def deliver(self, message: Message) -> None:
        if not self.running:
            return  # a packet racing the crash instant; the sender retries
        packet = message.payload
        if not isinstance(packet, packets.Connect):
            self._maybe_resume(message.src)
        handler = getattr(self, f"_on_{type(packet).__name__.lower()}", None)
        if handler is None:
            raise MqttProtocolError(f"broker cannot handle {type(packet).__name__}")
        handler(message.src, packet)

    def _maybe_resume(self, address: str) -> None:
        """Traffic from an expired-but-persistent session resumes it.

        A real client would notice the broken TCP connection and
        re-CONNECT; the simulated clients don't watch their sockets, so
        the broker treats any packet from the session's known address
        as that reconnection and flushes the offline queue.
        """
        session = self._session_for(address)
        if session is not None and not session.connected:
            session.connected = True
            session.last_seen = self._world.now
            self._flush_offline(session)

    # -- introspection -------------------------------------------------

    def session_count(self) -> int:
        return len(self._sessions)

    def connected_clients(self) -> list[str]:
        return sorted(cid for cid, s in self._sessions.items() if s.connected)

    def retained_topics(self) -> list[str]:
        return sorted(self._retained)

    def subscriber_count(self, topic: str) -> int:
        """Connected sessions with at least one filter matching ``topic``."""
        levels = validate_topic(topic)
        matched = self._subscriptions.match(levels)
        count = 0
        for client_id in matched:
            session = self._sessions.get(client_id)
            if session is not None and session.connected:
                count += 1
        return count

    @property
    def routing_checks(self) -> int:
        """Cumulative routing work (trie nodes visited + subscriber
        entries considered).  The perf harness diffs this across
        publishes to prove per-publish work is sublinear in the total
        subscription count."""
        return self._subscriptions.checks

    # -- packet handlers ----------------------------------------------

    def _on_connect(self, src: str, packet: packets.Connect) -> None:
        session = self._sessions.get(packet.client_id)
        session_present = session is not None and not packet.clean_session
        if session is None or packet.clean_session:
            if session is not None:
                # A clean CONNECT wipes the previous session, so its
                # subscriptions must leave the routing trie too.
                self._drop_subscriptions(session)
            session = _Session(
                client_id=packet.client_id,
                address=src,
                clean_session=packet.clean_session,
                keepalive=packet.keepalive,
            )
            self._sessions[packet.client_id] = session
        else:
            session.address = src
            session.connected = True
            session.keepalive = packet.keepalive
        session.will_topic = packet.will_topic
        session.will_payload = packet.will_payload
        session.last_seen = self._world.now
        self._address_to_client[src] = packet.client_id
        self._send(session, packets.ConnAck(session_present=session_present))
        self._flush_offline(session)

    def _on_disconnect(self, src: str, packet: packets.Disconnect) -> None:
        session = self._session_for(src)
        if session is None:
            return
        # A clean DISCONNECT discards the will message (MQTT 3.1.1).
        session.will_topic = None
        session.will_payload = None
        self._mark_disconnected(session, send_will=False)

    def _on_subscribe(self, src: str, packet: packets.Subscribe) -> None:
        session = self._require_session(src)
        levels = validate_filter(packet.topic_filter)
        current = session.subscriptions.get(packet.topic_filter)
        if (current is not None and current.partition is not None
                and packet.partition is not None
                and "version" in packet.partition
                and "version" in current.partition
                and packet.partition["version"]
                < current.partition["version"]):
            # A SUBSCRIBE carrying an older ring than the one already
            # bound must not rewind the slice: during elastic lifecycle
            # churn a re-subscribe delayed in flight could otherwise
            # overwrite a newer ownership map and route records to a
            # shard that no longer owns them.
            self.partition_stale_rejected += 1
            session.last_seen = self._world.now
            self._send(session, packets.SubAck(packet.packet_id,
                                               granted_qos=packet.qos))
            return
        session.subscriptions[packet.topic_filter] = _Subscription(
            packet.topic_filter, packet.qos, partition=packet.partition)
        session.has_partitioned = any(
            sub.partition is not None
            for sub in session.subscriptions.values())
        self._subscriptions.add(levels, session.client_id, packet.qos)
        session.last_seen = self._world.now
        self._send(session, packets.SubAck(packet.packet_id, granted_qos=packet.qos))
        # Retained messages matching the new filter are delivered at
        # once; the retained trie yields them already topic-sorted (the
        # historical delivery order of the full-table scan).  A
        # partitioned subscription only pulls its ring slice — this
        # redelivery of retained registrations is exactly how a shard
        # learns the devices it inherits after a rebalance.
        for _topic, retained in self._retained_trie.match_filter(levels):
            if packet.partition is not None and not self._partition_accepts(
                    packet.partition, validate_topic(retained.topic)):
                continue
            self._deliver_publish(session, retained, qos=min(
                packet.qos, retained.qos), retain_flag=True)

    def _on_unsubscribe(self, src: str, packet: packets.Unsubscribe) -> None:
        session = self._require_session(src)
        removed = session.subscriptions.pop(packet.topic_filter, None)
        if removed is not None:
            self._subscriptions.discard(
                validate_filter(packet.topic_filter), session.client_id)
            session.has_partitioned = any(
                sub.partition is not None
                for sub in session.subscriptions.values())
        session.last_seen = self._world.now
        self._send(session, packets.UnsubAck(packet.packet_id))

    def _on_publish(self, src: str, packet: packets.Publish) -> None:
        levels = validate_topic(packet.topic)
        self.publishes_received += 1
        payload = packet.payload
        if type(payload) is dict and "batch_wire" in payload:
            # A columnar batch envelope (repro.core.common.batch): the
            # single trie walk below routes every record it carries.
            self.batch_publishes += 1
            self.batched_records_routed += payload.get("n", 1)
            if self._obs is not None:
                self._obs.telemetry.histogram(
                    "batch_size", stage="broker").observe(payload.get("n", 1))
        if self._obs is not None:
            self._counter("broker_publishes_received", packet.topic).inc()
        session = self._session_for(src)
        if session is not None:
            session.last_seen = self._world.now
            if packet.qos >= 1 and packet.packet_id is not None:
                self._send(session, packets.PubAck(packet.packet_id))
        if packet.retain:
            if packet.payload is None:
                self._retained.pop(packet.topic, None)
                self._retained_trie.delete(levels)
            else:
                self._retained[packet.topic] = packet
                self._retained_trie.set(levels, packet)
        self.route(packet)

    def _on_pingreq(self, src: str, packet: packets.PingReq) -> None:
        session = self._session_for(src)
        if session is not None:
            session.last_seen = self._world.now
            self._send(session, packets.PingResp())

    def _on_puback(self, src: str, packet: packets.PubAck) -> None:
        session = self._session_for(src)
        if session is None:
            return
        session.last_seen = self._world.now
        pending = session.pending_acks.pop(packet.packet_id, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    # -- routing ------------------------------------------------------

    def route(self, packet: packets.Publish) -> int:
        """Fan a PUBLISH out to every matching session; returns count.

        The subscription trie yields each matching client with the max
        qos of its matching filters (``max over filters of min(sub.qos,
        packet.qos)`` equals ``min(max filter qos, packet.qos)`` since
        the packet qos is constant), and delivery iterates matched
        clients in sorted id order — the same order the historical
        all-sessions scan produced.
        """
        levels = validate_topic(packet.topic)
        matched = self._subscriptions.match(levels)
        delivered = 0
        for client_id in sorted(matched):
            session = self._sessions.get(client_id)
            if session is None:
                continue
            if session.has_partitioned and not self._partition_allows(
                    session, levels, packet.topic):
                self.partition_filtered += 1
                continue
            best_qos = min(matched[client_id], packet.qos)
            delivered += 1
            if session.connected:
                self._deliver_publish(session, packet, qos=best_qos)
            elif not session.clean_session:
                if len(session.offline_queue) < self.MAX_QUEUED:
                    session.offline_queue.append(packets.Publish(
                        topic=packet.topic, payload=packet.payload,
                        qos=best_qos, headers=dict(packet.headers)))
                    if self._obs is not None:
                        self._obs.telemetry.gauge(
                            "broker_offline_queue_depth",
                            client=session.client_id).set(
                                len(session.offline_queue))
        self.messages_routed += delivered
        if self._obs is not None and delivered:
            self._counter("broker_routed", packet.topic).inc(delivered)
        return delivered

    def _partition_allows(self, session: _Session, levels: list[str],
                          topic: str) -> bool:
        """Shard-aware routing decision for a partitioned session.

        The publish goes through if *any* subscription matching the
        topic is unpartitioned, or any matching partitioned
        subscription's ring places the topic's key on that shard.
        """
        from repro.mqtt.topics import topic_matches

        for sub in session.subscriptions.values():
            if not topic_matches(sub.topic_filter, topic):
                continue
            if sub.partition is None or self._partition_accepts(
                    sub.partition, levels):
                return True
        return False

    def _partition_accepts(self, spec: dict, levels: list[str]) -> bool:
        """Does the consistent-hash ring in ``spec`` place the topic's
        key on the subscribing shard?"""
        key_level = spec.get("key_level", 0)
        if not 0 <= key_level < len(levels):
            return False
        cache_key = (tuple(spec.get("members", ())), spec.get("vnodes"))
        ring = self._ring_cache.get(cache_key)
        if ring is None:
            # The ring module is import-cycle-sensitive (cluster code
            # imports the broker); resolve it lazily and rebuild the
            # ring once per distinct membership.
            from repro.cluster.ring import ConsistentHashRing
            ring = ConsistentHashRing.from_spec(spec)
            self._ring_cache[cache_key] = ring
        if not len(ring):
            return False
        return ring.owner(levels[key_level]) == spec.get("owner")

    def _counter(self, name: str, topic: str):
        """A cached per-topic counter handle: the hot loop resolves the
        registry entry (name + sorted label set) once per topic, not
        once per publish."""
        counter = self._obs_counters.get((name, topic))
        if counter is None:
            counter = self._obs.telemetry.counter(name, topic=topic)
            self._obs_counters[(name, topic)] = counter
        return counter

    def _deliver_publish(self, session: _Session, packet: packets.Publish,
                         qos: int, retain_flag: bool = False) -> None:
        outgoing = packets.Publish(
            topic=packet.topic, payload=packet.payload, qos=qos,
            retain=retain_flag, headers=dict(packet.headers))
        if qos >= 1:
            outgoing.packet_id = session.next_packet_id
            session.next_packet_id += 1
            pending = _PendingDelivery(outgoing, retries_left=self.MAX_RETRIES)
            session.pending_acks[outgoing.packet_id] = pending
            pending.timer = self._world.scheduler.schedule(
                self.RETRY_INTERVAL, self._retry, session.client_id,
                outgoing.packet_id)
        self._send(session, outgoing)

    def _retry(self, client_id: str, packet_id: int) -> None:
        session = self._sessions.get(client_id)
        if session is None:
            return
        pending = session.pending_acks.get(packet_id)
        if pending is None:
            return
        if pending.retries_left <= 0 or not session.connected:
            # Treat the client as gone; queue for reconnect when the
            # session is persistent, otherwise drop.
            session.pending_acks.pop(packet_id, None)
            if not session.clean_session:
                session.offline_queue.append(pending.publish)
                self._mark_disconnected(session, send_will=True)
            return
        pending.retries_left -= 1
        pending.publish.duplicate = True
        self._send(session, pending.publish)
        pending.timer = self._world.scheduler.schedule(
            self.RETRY_INTERVAL, self._retry, client_id, packet_id)

    def _flush_offline(self, session: _Session) -> None:
        queued, session.offline_queue = session.offline_queue, []
        if self._obs is not None and queued:
            self._obs.telemetry.gauge(
                "broker_offline_queue_depth",
                client=session.client_id).set(0)
        for packet in queued:
            self._deliver_publish(session, packet, qos=packet.qos)

    def _expire_dead_sessions(self) -> None:
        """Disconnect sessions silent past their keep-alive grace.

        A phone that died without a DISCONNECT is detected here; its
        will message (if any) fires, and a persistent session starts
        queueing for its eventual reconnection.
        """
        if not self.running:
            return
        now = self._world.now
        for session in list(self._sessions.values()):
            if not session.connected or session.keepalive <= 0:
                continue
            deadline = session.last_seen + session.keepalive * self.KEEPALIVE_GRACE
            if now > deadline:
                self.sessions_expired += 1
                self._mark_disconnected(session, send_will=True)

    # -- plumbing -----------------------------------------------------

    def _mark_disconnected(self, session: _Session, send_will: bool) -> None:
        session.connected = False
        if session.clean_session:
            # Persistent sessions keep their address mapping so later
            # traffic from the same client can resume them.
            self._address_to_client.pop(session.address, None)
        for pending in session.pending_acks.values():
            if pending.timer is not None:
                pending.timer.cancel()
            if not session.clean_session:
                session.offline_queue.append(pending.publish)
        session.pending_acks.clear()
        if send_will and session.will_topic is not None:
            self.route(packets.Publish(
                topic=session.will_topic, payload=session.will_payload, qos=0))
        if session.clean_session:
            self._drop_subscriptions(session)
            self._sessions.pop(session.client_id, None)

    def _drop_subscriptions(self, session: _Session) -> None:
        """Remove every filter of a dying session from the trie."""
        for topic_filter in session.subscriptions:
            self._subscriptions.discard(
                validate_filter(topic_filter), session.client_id)

    def _session_for(self, address: str) -> _Session | None:
        client_id = self._address_to_client.get(address)
        if client_id is None:
            return None
        return self._sessions.get(client_id)

    def _require_session(self, address: str) -> _Session:
        session = self._session_for(address)
        if session is None:
            raise MqttProtocolError(f"no connected session for address {address!r}")
        return session

    def _send(self, session: _Session, packet) -> None:
        self._network.send(self.address, session.address, packet)
