"""MQTT topic names, topic filters, and the matching rules.

Topic names are ``/``-separated level strings (``sensocial/device/42/
trigger``).  Filters may use ``+`` to match exactly one level and ``#``
(final level only) to match any remaining levels, per MQTT 3.1.1
section 4.7.
"""

from __future__ import annotations

from repro.mqtt.errors import MqttTopicError


def _split(topic: str) -> list[str]:
    if not topic:
        raise MqttTopicError("topic must be a non-empty string")
    if "\x00" in topic:
        raise MqttTopicError("topic must not contain NUL characters")
    return topic.split("/")


def validate_topic(topic: str) -> list[str]:
    """Validate a topic *name* (publishing target); returns its levels."""
    levels = _split(topic)
    for level in levels:
        if "+" in level or "#" in level:
            raise MqttTopicError(
                f"wildcards are not allowed in topic names: {topic!r}")
    return levels


def validate_filter(topic_filter: str) -> list[str]:
    """Validate a topic *filter* (subscription); returns its levels."""
    levels = _split(topic_filter)
    for index, level in enumerate(levels):
        if level == "#":
            if index != len(levels) - 1:
                raise MqttTopicError(
                    f"'#' must be the last level in filter {topic_filter!r}")
        elif "#" in level:
            raise MqttTopicError(
                f"'#' must occupy a whole level in filter {topic_filter!r}")
        elif "+" in level and level != "+":
            raise MqttTopicError(
                f"'+' must occupy a whole level in filter {topic_filter!r}")
    return levels


def topic_matches(topic_filter: str, topic: str) -> bool:
    """Does ``topic`` match ``topic_filter``?

    Implements the MQTT wildcard rules, including the corner case that
    a ``#`` also matches the parent level itself (``a/#`` matches
    ``a``) and that ``+`` matches an empty level.
    """
    filter_levels = validate_filter(topic_filter)
    topic_levels = validate_topic(topic)

    for index, pattern in enumerate(filter_levels):
        if pattern == "#":
            return True
        if index >= len(topic_levels):
            return False
        if pattern == "+":
            continue
        if pattern != topic_levels[index]:
            return False
    if len(topic_levels) > len(filter_levels):
        return False
    return True
