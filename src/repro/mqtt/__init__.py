"""In-simulation MQTT broker and client.

SenSocial pushes triggers and stream configurations to phones through a
Mosquitto MQTT broker; the paper argues for MQTT over HTTP polling
because push costs less battery.  This package reproduces the slice of
MQTT 3.1.1 the middleware needs: hierarchical topics with ``+``/``#``
wildcards, QoS 0 and QoS 1 (with retransmission), retained messages,
persistent sessions with offline queueing, and keep-alive.
"""

from repro.mqtt.errors import MqttError, MqttProtocolError, MqttTopicError
from repro.mqtt.topics import topic_matches, validate_filter, validate_topic
from repro.mqtt.broker import MqttBroker
from repro.mqtt.client import MqttClient

__all__ = [
    "MqttBroker",
    "MqttClient",
    "MqttError",
    "MqttProtocolError",
    "MqttTopicError",
    "topic_matches",
    "validate_filter",
    "validate_topic",
]
