"""Lexicon-based sentiment analysis of OSN posts.

The paper's conclusions name text mining of OSN content — classifying
post topics and emotional states — as planned future work; this module
implements that extension so the emotion-propagation example from the
introduction can run end to end.
"""

from __future__ import annotations

import re
from enum import Enum

_POSITIVE_LEXICON = {
    "loving": 2.0, "love": 2.0, "happy": 2.0, "fantastic": 2.5, "best": 2.0,
    "enjoying": 1.5, "thrilled": 2.5, "great": 1.5, "good": 1.0, "nice": 1.0,
    "wonderful": 2.0, "amazing": 2.5, "excited": 1.5, "glad": 1.5,
}

_NEGATIVE_LEXICON = {
    "disappointed": -2.0, "annoyed": -1.5, "worst": -2.5, "fed": -1.0,
    "terrible": -2.5, "sad": -2.0, "bad": -1.0, "awful": -2.5, "hate": -2.5,
    "angry": -2.0, "upset": -1.5, "horrible": -2.5, "miserable": -2.0,
}

_NEGATIONS = {"not", "no", "never", "hardly", "isnt", "wasnt", "dont", "didnt"}

_WORD = re.compile(r"[a-z']+")


class SentimentLabel(str, Enum):
    """Discrete post polarity."""

    POSITIVE = "positive"
    NEGATIVE = "negative"
    NEUTRAL = "neutral"


class SentimentAnalyzer:
    """Scores text in [-1, 1] and maps it to a discrete label."""

    def __init__(self, positive_threshold: float = 0.1,
                 negative_threshold: float = -0.1):
        if positive_threshold < negative_threshold:
            raise ValueError("positive threshold must be >= negative threshold")
        self.positive_threshold = positive_threshold
        self.negative_threshold = negative_threshold

    def score(self, text: str) -> float:
        """Average lexicon valence of the text, squashed into [-1, 1].

        A negation word flips the sign of the next sentiment-bearing
        word ("not happy" counts as negative).
        """
        words = _WORD.findall(text.lower().replace("'", ""))
        total = 0.0
        hits = 0
        negate = False
        for word in words:
            if word in _NEGATIONS:
                negate = True
                continue
            valence = _POSITIVE_LEXICON.get(word) or _NEGATIVE_LEXICON.get(word)
            if valence is not None:
                total += -valence if negate else valence
                hits += 1
            negate = False
        if hits == 0:
            return 0.0
        return max(-1.0, min(1.0, total / (2.5 * hits)))

    def label(self, text: str) -> SentimentLabel:
        """Discrete polarity of the text."""
        score = self.score(text)
        if score > self.positive_threshold:
            return SentimentLabel.POSITIVE
        if score < self.negative_threshold:
            return SentimentLabel.NEGATIVE
        return SentimentLabel.NEUTRAL
