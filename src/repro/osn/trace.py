"""OSN workload traces: record a run's actions, replay them exactly.

Reproducible experiments need identical OSN workloads across design
variants (the push-vs-poll ablation, for instance, must feed both arms
the same actions).  A trace records every action performed on a
service; replaying schedules the same actions, with the same content
and timing, against another service instance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.osn.actions import OsnAction
from repro.osn.service import OsnService
from repro.simkit.errors import SimulationError
from repro.simkit.world import World


@dataclass
class ActionTrace:
    """A recorded sequence of OSN actions."""

    platform: str
    entries: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def user_ids(self) -> list[str]:
        return sorted({entry["user_id"] for entry in self.entries})

    def to_json(self) -> str:
        return json.dumps({"platform": self.platform,
                           "entries": self.entries})

    @classmethod
    def from_json(cls, text: str) -> "ActionTrace":
        document = json.loads(text)
        return cls(platform=document["platform"],
                   entries=list(document["entries"]))


class TraceRecorder:
    """Attaches to a service and records every action it sees.

    Uses the service's synchronous action tap, so the recording sees
    every user's actions (webhooks would skip unauthorised users) at
    their true creation time (no notification delay).
    """

    def __init__(self, service: OsnService):
        self._service = service
        self.trace = ActionTrace(platform=service.platform)
        service.add_action_tap(self._on_action)

    def detach(self) -> None:
        """Stop recording."""
        self._service.remove_action_tap(self._on_action)

    def _on_action(self, action: OsnAction) -> None:
        self.trace.entries.append(action.to_document())


def replay_trace(world: World, service: OsnService, trace: ActionTrace,
                 register_missing_users: bool = True) -> int:
    """Schedule every trace entry against ``service`` at its original
    time (relative times must be in the future); returns the count."""
    scheduled = 0
    for entry in trace.entries:
        if entry["created_at"] < world.now:
            raise SimulationError(
                f"trace entry at t={entry['created_at']} is in the past "
                f"(clock at {world.now})")
        user_id = entry["user_id"]
        if register_missing_users and not service.graph.has_user(user_id):
            service.register_user(user_id)
            service.authorize_app(user_id)
        world.scheduler.schedule_at(
            entry["created_at"], service.perform_action, user_id,
            entry["type"], entry.get("content", ""), entry.get("target"),
            dict(entry.get("payload", {})))
        scheduled += 1
    return scheduled
