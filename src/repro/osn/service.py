"""The OSN platform service (Facebook / Twitter stand-in).

Hosts the social graph and the action firehose.  Third-party
applications (SenSocial's plug-ins) integrate two ways, exactly as the
paper describes in §4:

* **webhook subscription** — the platform pushes each action to the
  application after a *notification delay*; the paper measured this at
  ~46 s for Facebook (Table 3), and that delay lives here, not in the
  middleware;
* **timeline polling** — applications query ``timeline_since`` for new
  actions, the Twitter-plug-in model, whose latency is bounded by the
  chosen poll period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.net.latency import FixedLatency, LatencyModel
from repro.osn.actions import ActionType, OsnAction
from repro.osn.errors import UnknownUserError
from repro.osn.graph import SocialGraph
from repro.simkit.world import World

#: Signature of a webhook: receives the action at notification time.
WebhookCallback = Callable[[OsnAction], None]


@dataclass
class _WebhookSubscription:
    app_name: str
    callback: WebhookCallback
    delay: LatencyModel
    user_ids: set[str] | None  # None = all authenticated users


class OsnService:
    """One simulated OSN platform."""

    def __init__(self, world: World, platform: str = "facebook",
                 graph: SocialGraph | None = None):
        self._world = world
        self.platform = platform
        self.graph = graph if graph is not None else SocialGraph()
        self._rng = world.rng(f"osn-{platform}")
        self._feeds: dict[str, list[OsnAction]] = {}
        self._webhooks: list[_WebhookSubscription] = []
        self._authorized: set[str] = set()
        self._taps: list[WebhookCallback] = []
        self.actions_performed = 0

    # -- accounts -------------------------------------------------------

    def register_user(self, user_id: str) -> None:
        """Create a platform account; idempotent."""
        self.graph.add_user(user_id)
        self._feeds.setdefault(user_id, [])

    def authorize_app(self, user_id: str) -> None:
        """The user grants the SenSocial plug-in access (OAuth in §4)."""
        self._require_user(user_id)
        self._authorized.add(user_id)

    def is_authorized(self, user_id: str) -> bool:
        return user_id in self._authorized

    # -- actions ----------------------------------------------------------

    def perform_action(self, user_id: str, action_type: ActionType | str,
                       content: str = "", target: str | None = None,
                       payload: dict[str, Any] | None = None) -> OsnAction:
        """The user acts on the OSN; webhooks fire after their delay.

        Actions are accepted from any device — desktop, laptop or the
        phone itself — which is why SenSocial must observe them through
        the platform rather than on the phone.
        """
        self._require_user(user_id)
        action = OsnAction(
            user_id=user_id,
            type=ActionType(action_type),
            created_at=self._world.now,
            platform=self.platform,
            content=content,
            target=target,
            payload=dict(payload or {}),
            # World-scoped ids: the module-global fallback counter in
            # ``repro.osn.actions`` would keep counting across
            # simulations run back-to-back in one process.
            action_id=self._world.sequence("osn-action"),
        )
        self._feeds[user_id].append(action)
        self.actions_performed += 1
        self._maintain_graph(action)
        for tap in list(self._taps):
            tap(action)
        for subscription in self._webhooks:
            if subscription.user_ids is not None and user_id not in subscription.user_ids:
                continue
            if user_id not in self._authorized:
                continue
            delay = subscription.delay.sample(self._rng)
            self._world.scheduler.schedule(delay, subscription.callback, action)
        return action

    def _maintain_graph(self, action: OsnAction) -> None:
        """Friend add/remove actions mutate the social graph.

        Mirrors §4's "the server component classifies OSN actions to
        infer any change in the OSN".
        """
        other = action.payload.get("friend_id")
        if other is None or not self.graph.has_user(other):
            return
        if action.type is ActionType.FRIEND_ADD:
            self.graph.add_friendship(action.user_id, other)
        elif action.type is ActionType.FRIEND_REMOVE:
            self.graph.remove_friendship(action.user_id, other)

    # -- application integration ------------------------------------------

    def add_action_tap(self, callback: WebhookCallback) -> None:
        """Observe every action synchronously, without delay or
        authorisation filtering — platform-internal instrumentation
        (used by trace recording), not an application surface."""
        self._taps.append(callback)

    def remove_action_tap(self, callback: WebhookCallback) -> None:
        if callback in self._taps:
            self._taps.remove(callback)

    def subscribe_webhook(self, app_name: str, callback: WebhookCallback,
                          delay: LatencyModel | None = None,
                          user_ids: list[str] | None = None) -> None:
        """Push each (authorized) user action to ``callback`` after ``delay``."""
        self._webhooks.append(_WebhookSubscription(
            app_name=app_name,
            callback=callback,
            delay=delay if delay is not None else FixedLatency(0.0),
            user_ids=set(user_ids) if user_ids is not None else None,
        ))

    def timeline_since(self, user_id: str, since: float) -> list[OsnAction]:
        """Actions by ``user_id`` strictly after instant ``since``.

        The polling API used by the Twitter plug-in; requires the user
        to have authorized the application.
        """
        self._require_user(user_id)
        if user_id not in self._authorized:
            return []
        return [action for action in self._feeds[user_id]
                if action.created_at > since]

    def feed(self, user_id: str) -> list[OsnAction]:
        """The user's full action history (their wall)."""
        self._require_user(user_id)
        return list(self._feeds[user_id])

    def posts_of(self, user_id: str) -> list[OsnAction]:
        """Only the user's posts/tweets (content-bearing top level)."""
        return [action for action in self.feed(user_id)
                if action.type in (ActionType.POST, ActionType.TWEET)]

    def comments_on(self, target: str) -> list[OsnAction]:
        """Comments across all users targeting one post/page id."""
        return sorted(
            (action for feed in self._feeds.values() for action in feed
             if action.type is ActionType.COMMENT and action.target == target),
            key=lambda action: (action.created_at, action.action_id))

    def likes_of(self, target: str) -> list[str]:
        """Users who liked one post/page id (unique, sorted)."""
        return sorted({action.user_id for feed in self._feeds.values()
                       for action in feed
                       if action.type is ActionType.LIKE
                       and action.target == target})

    # -- internals ----------------------------------------------------------

    def _require_user(self, user_id: str) -> None:
        if user_id not in self._feeds:
            raise UnknownUserError(
                f"user {user_id!r} has no {self.platform} account")
