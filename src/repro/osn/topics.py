"""Topic extraction from OSN post text.

The paper's conclusions plan "classifiers that are able to extract OSN
post topics ... and link them to the users' physical context"; this
module implements that extension with a keyword-scoring model over the
same topic vocabulary the content generator draws from, so generated
workloads are classifiable end to end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.osn.content import TOPICS

_WORD = re.compile(r"[a-z']+")

#: Score for the topic's own name appearing in the text.
_NAME_WEIGHT = 2.0
#: Score for one of the topic's associated nouns appearing.
_NOUN_WEIGHT = 1.0


@dataclass(frozen=True)
class TopicScore:
    topic: str
    score: float


class TopicClassifier:
    """Keyword-weighted topic scoring with an extensible vocabulary."""

    def __init__(self, vocabulary: dict[str, list[str]] | None = None):
        base = {topic: list(nouns) for topic, nouns in TOPICS.items()}
        if vocabulary:
            for topic, nouns in vocabulary.items():
                base.setdefault(topic, [])
                base[topic] = sorted(set(base[topic]) | set(nouns))
        self._vocabulary = base

    def topics(self) -> list[str]:
        return sorted(self._vocabulary)

    def add_topic(self, topic: str, nouns: list[str]) -> None:
        """Extend the vocabulary (developer-supplied domain topics)."""
        existing = self._vocabulary.setdefault(topic, [])
        self._vocabulary[topic] = sorted(set(existing) | set(nouns))

    def scores(self, text: str) -> list[TopicScore]:
        """Every topic with a non-zero score, best first."""
        words = set(_WORD.findall(text.lower()))
        results = []
        for topic, nouns in sorted(self._vocabulary.items()):
            score = 0.0
            if topic in words:
                score += _NAME_WEIGHT
            score += _NOUN_WEIGHT * sum(1 for noun in nouns if noun in words)
            if score > 0:
                results.append(TopicScore(topic, score))
        results.sort(key=lambda item: (-item.score, item.topic))
        return results

    def classify(self, text: str) -> str | None:
        """The single best topic, or ``None`` for off-vocabulary text."""
        scores = self.scores(text)
        return scores[0].topic if scores else None
