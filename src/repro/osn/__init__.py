"""Simulated online social network (OSN).

Stands in for the Facebook and Twitter platforms of the paper: a
social graph, user-generated actions (posts, comments, likes, tweets),
per-user feeds, webhook subscriptions with realistic notification
delays, and a pollable timeline API.  Also hosts the content generator
and the lexicon sentiment analyser (the paper's stated future-work
extension, which this reproduction implements).
"""

from repro.osn.errors import OsnError, UnknownUserError
from repro.osn.graph import SocialGraph
from repro.osn.actions import ActionType, OsnAction
from repro.osn.content import ContentGenerator
from repro.osn.sentiment import SentimentAnalyzer, SentimentLabel
from repro.osn.topics import TopicClassifier, TopicScore
from repro.osn.service import OsnService
from repro.osn.generator import ActionWorkloadGenerator

__all__ = [
    "ActionType",
    "ActionWorkloadGenerator",
    "ContentGenerator",
    "OsnAction",
    "OsnError",
    "OsnService",
    "SentimentAnalyzer",
    "SentimentLabel",
    "SocialGraph",
    "TopicClassifier",
    "TopicScore",
    "UnknownUserError",
]
