"""OSN actions: the events SenSocial couples with physical context."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

_action_counter = itertools.count(1)


class ActionType(str, Enum):
    """The user activities the paper's plug-ins capture."""

    POST = "post"
    COMMENT = "comment"
    LIKE = "like"
    SHARE = "share"
    TWEET = "tweet"
    CHECKIN = "checkin"
    FRIEND_ADD = "friend_add"
    FRIEND_REMOVE = "friend_remove"


@dataclass
class OsnAction:
    """One action a user performed on the OSN.

    ``payload`` carries platform-specific extras (e.g. the page liked,
    the post commented on); ``content`` is the user-visible text used
    by the sentiment extension.
    """

    user_id: str
    type: ActionType
    created_at: float
    platform: str = "facebook"
    content: str = ""
    target: str | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    #: Unique id.  :class:`repro.osn.service.OsnService` assigns these
    #: from the world-scoped sequence; the module-counter default only
    #: serves hand-built actions (tests), which never need cross-run
    #: name stability.
    action_id: int = field(default_factory=lambda: next(_action_counter))

    def to_document(self) -> dict[str, Any]:
        """Serialise for storage / the JSON trigger string of §4."""
        return {
            "action_id": self.action_id,
            "user_id": self.user_id,
            "type": self.type.value,
            "created_at": self.created_at,
            "platform": self.platform,
            "content": self.content,
            "target": self.target,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_document(cls, document: dict[str, Any]) -> "OsnAction":
        """Inverse of :meth:`to_document`."""
        return cls(
            user_id=document["user_id"],
            type=ActionType(document["type"]),
            created_at=document["created_at"],
            platform=document.get("platform", "facebook"),
            content=document.get("content", ""),
            target=document.get("target"),
            payload=dict(document.get("payload", {})),
            action_id=document.get("action_id", 0),
        )
