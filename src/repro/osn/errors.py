"""OSN simulator errors."""


class OsnError(Exception):
    """Base class for OSN simulation errors."""


class UnknownUserError(OsnError):
    """Raised when an operation references a user the OSN does not know."""
