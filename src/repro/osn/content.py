"""Synthetic OSN post content.

Generates short status updates with a controllable topic and sentiment
so that content-based filters ("when the user posts about football")
and the sentiment extension have realistic material to chew on.
"""

from __future__ import annotations

import random

TOPICS = {
    "football": ["match", "goal", "team", "league", "striker", "derby"],
    "music": ["concert", "album", "song", "gig", "band", "playlist"],
    "food": ["dinner", "restaurant", "recipe", "coffee", "brunch", "bakery"],
    "travel": ["flight", "trip", "city", "beach", "museum", "train"],
    "work": ["meeting", "deadline", "project", "office", "presentation"],
    "weather": ["rain", "sunshine", "storm", "heatwave", "snow"],
}

POSITIVE_PHRASES = [
    "absolutely loving", "so happy about", "what a fantastic", "best ever",
    "really enjoying", "thrilled about", "great day for",
]

NEGATIVE_PHRASES = [
    "so disappointed by", "really annoyed about", "worst ever",
    "fed up with", "terrible experience with", "sad about",
]

NEUTRAL_PHRASES = [
    "thinking about", "heading to", "just saw", "reading about",
    "watching", "waiting for",
]


class ContentGenerator:
    """Draws post texts with a chosen (or random) topic and sentiment."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def topics(self) -> list[str]:
        return sorted(TOPICS)

    def generate(self, topic: str | None = None,
                 sentiment: str | None = None) -> str:
        """One post text.  ``sentiment`` in {positive, negative, neutral}."""
        if topic is None:
            topic = self._rng.choice(sorted(TOPICS))
        if topic not in TOPICS:
            raise ValueError(f"unknown topic {topic!r}; choose from {sorted(TOPICS)}")
        if sentiment is None:
            sentiment = self._rng.choice(["positive", "negative", "neutral"])
        phrases = {
            "positive": POSITIVE_PHRASES,
            "negative": NEGATIVE_PHRASES,
            "neutral": NEUTRAL_PHRASES,
        }.get(sentiment)
        if phrases is None:
            raise ValueError(f"unknown sentiment {sentiment!r}")
        phrase = self._rng.choice(phrases)
        noun = self._rng.choice(TOPICS[topic])
        return f"{phrase} the {topic} {noun}"
