"""The social graph: friendships (undirected) and follows (directed).

SenSocial's server keeps the users' OSN links in MongoDB and selects
multicast-stream members by graph neighbourhood; this class is the
in-model source of truth that the server mirrors into its database.
Includes the classic random-graph generators used by the benchmark
workloads.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable

from repro.osn.errors import UnknownUserError


class SocialGraph:
    """Users plus friendship and follow edges."""

    def __init__(self):
        self._friends: dict[str, set[str]] = {}
        self._following: dict[str, set[str]] = {}
        self._followers: dict[str, set[str]] = {}

    # -- membership ----------------------------------------------------

    def add_user(self, user_id: str) -> None:
        """Register a user; idempotent."""
        self._friends.setdefault(user_id, set())
        self._following.setdefault(user_id, set())
        self._followers.setdefault(user_id, set())

    def remove_user(self, user_id: str) -> None:
        """Remove a user and every edge touching them."""
        self._require(user_id)
        for friend in self._friends.pop(user_id):
            self._friends[friend].discard(user_id)
        for followee in self._following.pop(user_id):
            self._followers[followee].discard(user_id)
        for follower in self._followers.pop(user_id):
            self._following[follower].discard(user_id)

    def has_user(self, user_id: str) -> bool:
        return user_id in self._friends

    def users(self) -> list[str]:
        return sorted(self._friends)

    def user_count(self) -> int:
        return len(self._friends)

    # -- friendship (undirected, Facebook-style) ------------------------

    def add_friendship(self, a: str, b: str) -> None:
        self._require(a)
        self._require(b)
        if a == b:
            raise ValueError(f"user {a!r} cannot befriend themselves")
        self._friends[a].add(b)
        self._friends[b].add(a)

    def remove_friendship(self, a: str, b: str) -> None:
        self._require(a)
        self._require(b)
        self._friends[a].discard(b)
        self._friends[b].discard(a)

    def are_friends(self, a: str, b: str) -> bool:
        self._require(a)
        return b in self._friends[a]

    def friends(self, user_id: str) -> list[str]:
        self._require(user_id)
        return sorted(self._friends[user_id])

    def degree(self, user_id: str) -> int:
        self._require(user_id)
        return len(self._friends[user_id])

    def mutual_friends(self, a: str, b: str) -> list[str]:
        self._require(a)
        self._require(b)
        return sorted(self._friends[a] & self._friends[b])

    def friendship_count(self) -> int:
        return sum(len(adj) for adj in self._friends.values()) // 2

    def friends_within(self, user_id: str, hops: int) -> list[str]:
        """Users within ``hops`` friendship hops (excluding the user)."""
        self._require(user_id)
        seen = {user_id}
        frontier = deque([(user_id, 0)])
        reached: list[str] = []
        while frontier:
            current, depth = frontier.popleft()
            if depth == hops:
                continue
            for neighbour in sorted(self._friends[current]):
                if neighbour not in seen:
                    seen.add(neighbour)
                    reached.append(neighbour)
                    frontier.append((neighbour, depth + 1))
        return reached

    # -- follows (directed, Twitter-style) ------------------------------

    def add_follow(self, follower: str, followee: str) -> None:
        self._require(follower)
        self._require(followee)
        if follower == followee:
            raise ValueError(f"user {follower!r} cannot follow themselves")
        self._following[follower].add(followee)
        self._followers[followee].add(follower)

    def remove_follow(self, follower: str, followee: str) -> None:
        self._require(follower)
        self._require(followee)
        self._following[follower].discard(followee)
        self._followers[followee].discard(follower)

    def follows(self, follower: str, followee: str) -> bool:
        self._require(follower)
        return followee in self._following[follower]

    def following(self, user_id: str) -> list[str]:
        self._require(user_id)
        return sorted(self._following[user_id])

    def followers(self, user_id: str) -> list[str]:
        self._require(user_id)
        return sorted(self._followers[user_id])

    # -- generators ------------------------------------------------------

    @classmethod
    def erdos_renyi(cls, user_ids: Iterable[str], probability: float,
                    rng: random.Random) -> "SocialGraph":
        """G(n, p): each pair befriended independently with ``probability``."""
        graph = cls()
        ids = list(user_ids)
        for user_id in ids:
            graph.add_user(user_id)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if rng.random() < probability:
                    graph.add_friendship(a, b)
        return graph

    @classmethod
    def watts_strogatz(cls, user_ids: Iterable[str], neighbours: int,
                       rewire_probability: float, rng: random.Random) -> "SocialGraph":
        """Small-world ring lattice with random rewiring."""
        graph = cls()
        ids = list(user_ids)
        n = len(ids)
        for user_id in ids:
            graph.add_user(user_id)
        if n < 3:
            return graph
        half = max(1, neighbours // 2)
        for i in range(n):
            for offset in range(1, half + 1):
                j = (i + offset) % n
                if rng.random() < rewire_probability:
                    choices = [k for k in range(n)
                               if k != i and not graph.are_friends(ids[i], ids[k])]
                    if choices:
                        j = rng.choice(choices)
                if ids[i] != ids[j]:
                    graph.add_friendship(ids[i], ids[j])
        return graph

    @classmethod
    def barabasi_albert(cls, user_ids: Iterable[str], edges_per_user: int,
                        rng: random.Random) -> "SocialGraph":
        """Preferential attachment: hubs emerge, as in real OSNs."""
        graph = cls()
        ids = list(user_ids)
        for user_id in ids:
            graph.add_user(user_id)
        if len(ids) < 2:
            return graph
        m = max(1, min(edges_per_user, len(ids) - 1))
        targets = ids[:m]
        attachment_pool: list[str] = list(targets)
        for new_user in ids[m:]:
            chosen: set[str] = set()
            while len(chosen) < m:
                candidate = rng.choice(attachment_pool)
                if candidate != new_user:
                    chosen.add(candidate)
            for friend in chosen:
                graph.add_friendship(new_user, friend)
                attachment_pool.append(friend)
            attachment_pool.extend([new_user] * m)
        return graph

    # -- internals -------------------------------------------------------

    def _require(self, user_id: str) -> None:
        if user_id not in self._friends:
            raise UnknownUserError(f"unknown user {user_id!r}")
