"""OSN action workload generator.

Drives the OSN service with Poisson action arrivals per user — the
workload behind Table 4 (bursts of actions in a 20-minute window) and
the scalability benches.
"""

from __future__ import annotations

from repro.osn.actions import ActionType
from repro.osn.content import ContentGenerator
from repro.osn.service import OsnService
from repro.simkit.world import World

#: Relative frequency of action types in the generated workload;
#: posts/likes/comments dominate, matching the plug-in coverage of §4.
DEFAULT_ACTION_MIX = [
    (ActionType.POST, 0.35),
    (ActionType.LIKE, 0.30),
    (ActionType.COMMENT, 0.20),
    (ActionType.SHARE, 0.10),
    (ActionType.CHECKIN, 0.05),
]


class ActionWorkloadGenerator:
    """Poisson action arrivals for a set of users.

    Two operating modes:

    * Per-user (``start_user`` / ``start_all``) — one chained event per
      user, the classic testbed shape.  O(users) pending events and
      O(users) ``_running`` state.
    * Streaming (``stream_arrivals``) — a *single* chained pump drawing
      from the aggregate Poisson process (rate = users x per-user rate)
      and assigning each arrival to a user by draw.  Statistically the
      same workload with O(1) pending events and O(1) generator state,
      which is what population-scale OSN runs need.
    """

    __slots__ = ("_world", "_service", "_rng", "_content",
                 "actions_per_hour", "_mix", "_running",
                 "stream_actions")

    def __init__(self, world: World, service: OsnService,
                 actions_per_hour: float = 2.0,
                 action_mix: list[tuple[ActionType, float]] | None = None):
        if actions_per_hour <= 0:
            raise ValueError(f"actions_per_hour must be > 0, got {actions_per_hour}")
        self._world = world
        self._service = service
        self._rng = world.rng(f"osn-workload-{service.platform}")
        self._content = ContentGenerator(world.rng("osn-content"))
        self.actions_per_hour = actions_per_hour
        self._mix = action_mix if action_mix is not None else DEFAULT_ACTION_MIX
        self._running: dict[str, bool] = {}
        #: Actions performed by the streaming pump (all modes share
        #: ``_perform_once``, so per-user counters stay in the service).
        self.stream_actions = 0

    def start_user(self, user_id: str) -> None:
        """Begin generating actions for ``user_id``."""
        if self._running.get(user_id):
            return
        self._running[user_id] = True
        self._schedule_next(user_id)

    def stop_user(self, user_id: str) -> None:
        self._running[user_id] = False

    def start_all(self) -> None:
        for user_id in self._service.graph.users():
            self.start_user(user_id)

    def burst(self, user_id: str, count: int, interval: float) -> None:
        """Schedule exactly ``count`` actions ``interval`` seconds apart.

        Used by the Table 4 bench, which needs a controlled number of
        actions inside a 20-minute window rather than a Poisson draw.
        """
        for index in range(count):
            self._world.scheduler.schedule(
                index * interval, self._perform_once, user_id)

    def stream_arrivals(self, users: list[str] | None = None,
                        until: float | None = None) -> None:
        """Drive all users from one aggregate Poisson pump.

        ``users`` defaults to the service graph's registered users; the
        pump samples the aggregate process (``len(users) x
        actions_per_hour``) and assigns each arrival uniformly, so the
        per-user marginal is the same Poisson process ``start_all``
        produces — without one pending event and one ``_running`` entry
        per user.  Stops after ``until`` (absolute sim time), or runs
        while the simulation does.
        """
        roster = users if users is not None \
            else list(self._service.graph.users())
        if not roster:
            return
        mean_gap = 3600.0 / (self.actions_per_hour * len(roster))
        self._world.scheduler.schedule(
            self._rng.expovariate(1.0 / mean_gap), self._stream_fire,
            roster, mean_gap, until)

    def _stream_fire(self, roster: list[str], mean_gap: float,
                     until: float | None) -> None:
        if until is not None and self._world.now > until:
            return
        self.stream_actions += 1
        self._perform_once(roster[self._rng.randrange(len(roster))])
        self._world.scheduler.schedule(
            self._rng.expovariate(1.0 / mean_gap), self._stream_fire,
            roster, mean_gap, until)

    def _schedule_next(self, user_id: str) -> None:
        mean_gap = 3600.0 / self.actions_per_hour
        gap = self._rng.expovariate(1.0 / mean_gap)
        self._world.scheduler.schedule(gap, self._fire, user_id)

    def _fire(self, user_id: str) -> None:
        if not self._running.get(user_id):
            return
        self._perform_once(user_id)
        self._schedule_next(user_id)

    def _perform_once(self, user_id: str) -> None:
        action_type = self._draw_type()
        content = ""
        if action_type in (ActionType.POST, ActionType.COMMENT, ActionType.TWEET):
            content = self._content.generate()
        self._service.perform_action(user_id, action_type, content=content)

    def _draw_type(self) -> ActionType:
        total = sum(weight for _, weight in self._mix)
        draw = self._rng.random() * total
        for action_type, weight in self._mix:
            draw -= weight
            if draw <= 0:
                return action_type
        return self._mix[-1][0]
