"""Hand-rolled MQTT session management for the baseline app.

Everything the SenSocial MQTT service does for free has to be written
here: connecting with a persistent session, registering the device with
the server, subscribing to the device's trigger topic, tracking
connection state, and re-announcing after reconnects.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.device.phone import Smartphone
from repro.mqtt.client import MqttClient
from repro.net.network import Network
from repro.simkit.world import World

TriggerCallback = Callable[[str], None]

#: Topic scheme this application invents for itself.  Registrations go
#: to a per-device retained topic so a late-starting server still sees
#: every device (the same lesson the middleware learned once).
BASELINE_REGISTRATION_FILTER = "bsm/register/+"


def baseline_registration_topic(device_id: str) -> str:
    return f"bsm/register/{device_id}"


def baseline_trigger_topic(device_id: str) -> str:
    return f"bsm/device/{device_id}/trigger"


class BaselineMqttHandler:
    """Owns the app's MQTT connection and inbound trigger dispatch."""

    def __init__(self, world: World, network: Network, phone: Smartphone,
                 broker_address: str = "mqtt-broker"):
        self._world = world
        self._phone = phone
        self._client = MqttClient(
            world, network,
            client_id=f"bsm-{phone.device_id}",
            address=f"bsm-mqtt/{phone.device_id}",
            broker_address=broker_address,
            radio=phone.radio,
        )
        self._trigger_callbacks: list[TriggerCallback] = []
        self._connected = False
        self._registered = False
        self.triggers_received = 0

    @property
    def connected(self) -> bool:
        return self._connected

    def connect(self) -> None:
        """Connect and subscribe; idempotent."""
        if self._connected:
            return
        self._client.connect(clean_session=False)
        self._connected = True
        self._client.subscribe(
            baseline_trigger_topic(self._phone.device_id),
            self._on_trigger_message)
        self._announce_device()

    def disconnect(self) -> None:
        if not self._connected:
            return
        self._client.disconnect()
        self._connected = False
        self._registered = False

    def on_trigger(self, callback: TriggerCallback) -> None:
        self._trigger_callbacks.append(callback)

    def _announce_device(self) -> None:
        if self._registered:
            return
        payload = json.dumps({
            "user_id": self._phone.user_id,
            "device_id": self._phone.device_id,
        })
        self._client.publish(
            baseline_registration_topic(self._phone.device_id), payload,
            qos=1, retain=True, on_ack=self._on_registration_ack)

    def _on_registration_ack(self) -> None:
        self._registered = True

    def _on_trigger_message(self, topic: str, payload: str) -> None:
        self.triggers_received += 1
        for callback in list(self._trigger_callbacks):
            callback(payload)
