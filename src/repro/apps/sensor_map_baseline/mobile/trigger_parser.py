"""Trigger payload parsing and validation for the baseline app.

With SenSocial the JSON trigger format is internal to the middleware;
without it the application defines, versions and validates its own
wire format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

TRIGGER_SCHEMA_VERSION = 1


class TriggerParseError(Exception):
    """Raised for malformed or incompatible trigger payloads."""


@dataclass(frozen=True)
class ParsedTrigger:
    """A validated sensing trigger."""

    action_id: int
    user_id: str
    action_type: str
    content: str
    platform: str
    created_at: float
    raw: dict[str, Any]


def compile_trigger(action_document: dict[str, Any]) -> str:
    """Server side: wrap an action document into a trigger payload."""
    return json.dumps({
        "version": TRIGGER_SCHEMA_VERSION,
        "action": action_document,
    })


def parse_trigger(payload: str) -> ParsedTrigger:
    """Mobile side: decode and validate one trigger payload."""
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as error:
        raise TriggerParseError(f"trigger is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise TriggerParseError(
            f"trigger must be an object, got {type(document).__name__}")
    version = document.get("version")
    if version != TRIGGER_SCHEMA_VERSION:
        raise TriggerParseError(
            f"unsupported trigger version {version!r}; "
            f"this build speaks version {TRIGGER_SCHEMA_VERSION}")
    action = document.get("action")
    if not isinstance(action, dict):
        raise TriggerParseError("trigger is missing its action object")
    for required in ("action_id", "user_id", "type", "created_at"):
        if required not in action:
            raise TriggerParseError(f"trigger action missing field {required!r}")
    return ParsedTrigger(
        action_id=int(action["action_id"]),
        user_id=str(action["user_id"]),
        action_type=str(action["type"]),
        content=str(action.get("content", "")),
        platform=str(action.get("platform", "facebook")),
        created_at=float(action["created_at"]),
        raw=action,
    )
