"""One-off sensor orchestration for the baseline app.

SenSocial's social-event streams do this internally; without the
middleware the application must drive the sensing library by hand:
fan out one-off requests for each modality, collect the asynchronous
completions for one trigger, time out stragglers, and hand the
assembled context bundle back to the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.device.sensors.base import SensorReading
from repro.sensing.manager import ESSensorManager
from repro.simkit.scheduler import EventHandle
from repro.simkit.world import World

BundleCallback = Callable[["ContextBundle"], None]

#: Give every sensor this long to complete before the bundle is closed.
BUNDLE_TIMEOUT_S = 30.0


@dataclass
class ContextBundle:
    """All readings collected for one trigger."""

    trigger_action_id: int
    readings: dict[str, SensorReading] = field(default_factory=dict)
    complete: bool = False
    timed_out_modalities: list[str] = field(default_factory=list)

    def reading(self, modality: str) -> SensorReading | None:
        return self.readings.get(modality)


class BaselineSensorController:
    """Collects one-off readings of several modalities per trigger."""

    def __init__(self, world: World, sensing: ESSensorManager,
                 modalities: list[str]):
        self._world = world
        self._sensing = sensing
        self.modalities = list(modalities)
        self._pending: dict[int, ContextBundle] = {}
        self._callbacks: dict[int, BundleCallback] = {}
        self._timeouts: dict[int, EventHandle] = {}
        self.bundles_started = 0
        self.bundles_completed = 0

    def collect_for_trigger(self, action_id: int,
                            callback: BundleCallback) -> None:
        """Start one-off sensing of every modality for ``action_id``."""
        if action_id in self._pending:
            return  # duplicate trigger delivery; already collecting
        bundle = ContextBundle(trigger_action_id=action_id)
        self._pending[action_id] = bundle
        self._callbacks[action_id] = callback
        self.bundles_started += 1
        for modality in self.modalities:
            self._sensing.sense_once(
                modality,
                lambda reading, action_id=action_id: self._on_reading(
                    action_id, reading))
        self._timeouts[action_id] = self._world.scheduler.schedule(
            BUNDLE_TIMEOUT_S, self._on_timeout, action_id)

    def _on_reading(self, action_id: int, reading: SensorReading) -> None:
        bundle = self._pending.get(action_id)
        if bundle is None:
            return  # bundle already closed by timeout
        bundle.readings[reading.modality] = reading
        if len(bundle.readings) == len(self.modalities):
            self._close(action_id, complete=True)

    def _on_timeout(self, action_id: int) -> None:
        bundle = self._pending.get(action_id)
        if bundle is None:
            return
        bundle.timed_out_modalities = [
            modality for modality in self.modalities
            if modality not in bundle.readings]
        self._close(action_id, complete=False)

    def _close(self, action_id: int, complete: bool) -> None:
        bundle = self._pending.pop(action_id)
        callback = self._callbacks.pop(action_id)
        timeout = self._timeouts.pop(action_id, None)
        if timeout is not None:
            timeout.cancel()
        bundle.complete = complete
        if complete:
            self.bundles_completed += 1
        callback(bundle)
