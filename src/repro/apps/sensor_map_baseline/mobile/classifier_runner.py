"""Classifier wiring for the baseline app.

SenSocial picks, instantiates and energy-accounts classifiers per
stream; without it the application instantiates each classifier, maps
modalities to them, and decides per modality whether the marker wants
raw or classified data.
"""

from __future__ import annotations

from typing import Any

from repro.classify.activity import ActivityClassifier
from repro.classify.audio import AudioClassifier
from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading


class BaselineClassifierRunner:
    """Classifies accelerometer and microphone readings; location stays raw."""

    def __init__(self, phone: Smartphone):
        self._activity = ActivityClassifier(phone.battery, phone.cpu)
        self._audio = AudioClassifier(phone.battery, phone.cpu)

    def process(self, reading: SensorReading) -> tuple[str, Any, dict]:
        """Return (granularity, value, details) for one reading."""
        if reading.modality == "accelerometer":
            classified = self._activity.classify(reading)
            return "classified", classified.label, classified.details
        if reading.modality == "microphone":
            classified = self._audio.classify(reading)
            return "classified", classified.label, classified.details
        if reading.modality == "location":
            return "raw", reading.raw, {}
        raise ValueError(
            f"sensor map does not handle modality {reading.modality!r}")
