"""The baseline Facebook Sensor Map background service.

Wires the hand-written pieces together: configuration → MQTT session →
trigger parsing and de-duplication → one-off sensing fan-out →
classification → local persistence → reliable upload.  Compare with
:class:`repro.apps.sensor_map.mobile.FacebookSensorMapService`, which
gets all of this from four SenSocial API calls.
"""

from __future__ import annotations

from repro.apps.sensor_map_baseline.mobile.app_config import SensorMapConfig
from repro.apps.sensor_map_baseline.mobile.classifier_runner import (
    BaselineClassifierRunner,
)
from repro.apps.sensor_map_baseline.mobile.marker_store import BaselineMarkerStore
from repro.apps.sensor_map_baseline.mobile.mqtt_handler import BaselineMqttHandler
from repro.apps.sensor_map_baseline.mobile.sensor_controller import (
    BaselineSensorController,
    ContextBundle,
)
from repro.apps.sensor_map_baseline.mobile.trigger_dedup import (
    TriggerDeduplicator,
)
from repro.apps.sensor_map_baseline.mobile.trigger_parser import (
    ParsedTrigger,
    TriggerParseError,
    parse_trigger,
)
from repro.apps.sensor_map_baseline.mobile.uploader import BaselineUploader
from repro.device.phone import Smartphone
from repro.net.network import Network
from repro.sensing.manager import ESSensorManager
from repro.simkit.world import World


class BaselineSensorMapService:
    """Everything the middleware would have done, by hand."""

    def __init__(self, world: World, network: Network, phone: Smartphone,
                 server_address: str = "bsm-server",
                 broker_address: str = "mqtt-broker",
                 config: SensorMapConfig | None = None):
        self._world = world
        self.phone = phone
        self.config = (config if config is not None else SensorMapConfig(
            server_address=server_address,
            broker_address=broker_address)).validate()
        self.mqtt = BaselineMqttHandler(world, network, phone,
                                        self.config.broker_address)
        self.sensors = BaselineSensorController(
            world, ESSensorManager.get_for(world, phone),
            list(self.config.modalities))
        self.classifiers = BaselineClassifierRunner(phone)
        self.store = BaselineMarkerStore()
        self.uploader = BaselineUploader(world, phone,
                                         self.config.server_address,
                                         self.config.retry)
        self.dedup = TriggerDeduplicator(world, self.config.trigger_ttl_s)
        self._pending_actions: dict[int, ParsedTrigger] = {}
        self.parse_errors = 0
        self.started = False

    def start(self) -> "BaselineSensorMapService":
        if not self.started:
            self.mqtt.on_trigger(self._on_trigger_payload)
            self.mqtt.connect()
            self.started = True
        return self

    def stop(self) -> None:
        if self.started:
            self.mqtt.disconnect()
            self.uploader.shutdown()
            self.started = False

    # -- trigger path ----------------------------------------------------------

    def _on_trigger_payload(self, payload: str) -> None:
        try:
            trigger = parse_trigger(payload)
        except TriggerParseError:
            self.parse_errors += 1
            return
        if trigger.user_id != self.phone.user_id:
            return  # trigger addressed to someone else's account
        if not self.dedup.should_process(trigger.action_id,
                                         trigger.created_at):
            return  # QoS-1 redelivery or an ancient replay
        self._pending_actions[trigger.action_id] = trigger
        self.sensors.collect_for_trigger(trigger.action_id, self._on_bundle)

    def _on_bundle(self, bundle: ContextBundle) -> None:
        trigger = self._pending_actions.pop(bundle.trigger_action_id, None)
        if trigger is None:
            return
        for modality in self.config.modalities:
            reading = bundle.reading(modality)
            if reading is None:
                continue  # timed out; the marker stays partial
            granularity, value, details = self.classifiers.process(reading)
            fragment = {
                "action_id": trigger.action_id,
                "user_id": trigger.user_id,
                "action_type": trigger.action_type,
                "content": trigger.content,
                "modality": modality,
                "granularity": granularity,
                "value": value,
                "details": details,
                "timestamp": reading.timestamp,
            }
            self.store.save_fragment(fragment)
            self.uploader.upload(fragment, reading.wire_bytes)

    # -- map view helpers -------------------------------------------------------

    def marker_count(self) -> int:
        return self.store.count()

    def markers_for_action(self, action_id: int) -> list[dict]:
        return self.store.fragments_for_action(action_id)
