"""Reliable upload pipeline for the baseline sensor map.

The middleware ships stream records with QoS semantics for free; this
application builds its own: sequence numbers, per-fragment ack
tracking, retransmission with exponential backoff, a bounded pending
buffer, and abandonment accounting.  (The baseline ConWeb app had to
write the same machinery again — exactly the duplicated effort the
paper's Table 5 quantifies.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.sensor_map_baseline.mobile.app_config import RetryPolicy
from repro.device.phone import Smartphone
from repro.net.errors import UnknownEndpointError
from repro.simkit.scheduler import EventHandle
from repro.simkit.world import World

UPLOAD_PROTOCOL = "bsm-data"
UPLOAD_ACK_PROTOCOL = "bsm-ack"

#: Envelope overhead added to every upload, in bytes.
_ENVELOPE_BYTES = 110


@dataclass
class _PendingFragment:
    sequence: int
    fragment: dict[str, Any]
    wire_bytes: int
    attempts: int = 0
    timer: EventHandle | None = None


class BaselineUploader:
    """At-least-once delivery of marker fragments to the app server."""

    def __init__(self, world: World, phone: Smartphone, server_address: str,
                 policy: RetryPolicy | None = None):
        self._world = world
        self._phone = phone
        self.server_address = server_address
        self.policy = policy if policy is not None else RetryPolicy()
        self._sequence = 0
        self._pending: dict[int, _PendingFragment] = {}
        self.uploads_sent = 0
        self.uploads_acked = 0
        self.uploads_failed = 0
        self.uploads_abandoned = 0
        self.retransmissions = 0
        phone.on_protocol(UPLOAD_ACK_PROTOCOL, self._on_ack)

    def upload(self, marker_fragment: dict[str, Any], wire_bytes: int) -> bool:
        """Queue one fragment; returns False when the buffer is full."""
        if len(self._pending) >= self.policy.max_pending:
            self.uploads_failed += 1
            return False
        self._sequence += 1
        pending = _PendingFragment(
            sequence=self._sequence,
            fragment=dict(marker_fragment),
            wire_bytes=wire_bytes,
        )
        self._pending[pending.sequence] = pending
        self.uploads_sent += 1
        self._transmit(pending)
        return True

    def pending_count(self) -> int:
        return len(self._pending)

    def shutdown(self) -> None:
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # -- wire protocol -----------------------------------------------------

    def _transmit(self, pending: _PendingFragment) -> None:
        pending.attempts += 1
        envelope = {
            "seq": pending.sequence,
            "device_id": self._phone.device_id,
            "fragment": pending.fragment,
        }
        try:
            self._phone.send(self.server_address, UPLOAD_PROTOCOL, envelope,
                             size=pending.wire_bytes + _ENVELOPE_BYTES)
        except UnknownEndpointError:
            pass  # unreachable server: the timer drives the retry
        timeout = (self.policy.ack_timeout_s
                   * self.policy.backoff_factor ** (pending.attempts - 1))
        pending.timer = self._world.scheduler.schedule(
            timeout, self._on_timeout, pending.sequence)

    def _on_timeout(self, sequence: int) -> None:
        pending = self._pending.get(sequence)
        if pending is None:
            return
        if pending.attempts > self.policy.max_retries:
            del self._pending[sequence]
            self.uploads_abandoned += 1
            return
        self.retransmissions += 1
        self._transmit(pending)

    def _on_ack(self, payload: dict, message) -> None:
        pending = self._pending.pop(payload.get("seq"), None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.uploads_acked += 1
