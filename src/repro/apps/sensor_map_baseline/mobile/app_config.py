"""Configuration schema for the baseline Facebook Sensor Map."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

DEFAULT_MODALITIES = ("accelerometer", "microphone", "location")


class SensorMapConfigError(Exception):
    """Raised for invalid sensor-map configuration."""


@dataclass
class RetryPolicy:
    """Upload retry behaviour."""

    ack_timeout_s: float = 10.0
    max_retries: int = 3
    backoff_factor: float = 2.0
    max_pending: int = 100

    def validate(self) -> None:
        if self.ack_timeout_s <= 0:
            raise SensorMapConfigError(
                f"ack_timeout_s must be > 0, got {self.ack_timeout_s}")
        if self.max_retries < 0:
            raise SensorMapConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_factor < 1.0:
            raise SensorMapConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_pending <= 0:
            raise SensorMapConfigError(
                f"max_pending must be > 0, got {self.max_pending}")


@dataclass
class SensorMapConfig:
    """Everything the baseline sensor map can be configured with."""

    modalities: tuple[str, ...] = DEFAULT_MODALITIES
    server_address: str = "bsm-server"
    broker_address: str = "mqtt-broker"
    #: Triggers older than this are assumed replayed and dropped.
    trigger_ttl_s: float = 600.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def validate(self) -> "SensorMapConfig":
        if not self.modalities:
            raise SensorMapConfigError("at least one modality is required")
        if len(set(self.modalities)) != len(self.modalities):
            raise SensorMapConfigError("modalities must be unique")
        if self.trigger_ttl_s <= 0:
            raise SensorMapConfigError(
                f"trigger_ttl_s must be > 0, got {self.trigger_ttl_s}")
        self.retry.validate()
        return self

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "SensorMapConfig":
        known = {"modalities", "server_address", "broker_address",
                 "trigger_ttl_s", "retry"}
        unknown = set(document) - known
        if unknown:
            raise SensorMapConfigError(
                f"unknown configuration keys: {sorted(unknown)}")
        config = cls(
            modalities=tuple(document.get("modalities", DEFAULT_MODALITIES)),
            server_address=document.get("server_address", "bsm-server"),
            broker_address=document.get("broker_address", "mqtt-broker"),
            trigger_ttl_s=float(document.get("trigger_ttl_s", 600.0)),
            retry=RetryPolicy(**document.get("retry", {})),
        )
        return config.validate()
