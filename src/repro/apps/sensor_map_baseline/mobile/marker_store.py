"""Local marker persistence for the baseline app (SQLite stand-in)."""

from __future__ import annotations

from typing import Any

from repro.docstore import DocumentStore


class BaselineMarkerStore:
    """Stores and queries the on-phone copy of the map markers."""

    def __init__(self):
        self._store = DocumentStore("bsm-local")
        self._markers = self._store["markers"]

    def save_fragment(self, fragment: dict[str, Any]) -> None:
        self._markers.insert_one(fragment)

    def count(self) -> int:
        return len(self._markers)

    def fragments_for_action(self, action_id: int) -> list[dict]:
        return list(self._markers.find({"action_id": action_id})
                    .sort("modality"))

    def recent(self, limit: int = 20) -> list[dict]:
        return list(self._markers.find().sort("timestamp", -1).limit(limit))
