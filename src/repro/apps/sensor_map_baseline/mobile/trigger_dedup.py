"""Trigger de-duplication for the baseline sensor map.

MQTT QoS-1 delivers triggers at-least-once: a retransmitted trigger
must not cause a second round of sensing (and a second marker).  The
middleware de-duplicates inside its session layer; a stand-alone app
keeps its own seen-set, with a TTL so replayed ancient triggers are
rejected outright and memory stays bounded.
"""

from __future__ import annotations

from repro.simkit.world import World


class TriggerDeduplicator:
    """Seen-trigger bookkeeping with TTL-based replay rejection."""

    def __init__(self, world: World, ttl_s: float = 600.0,
                 max_entries: int = 1000):
        self._world = world
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._seen: dict[int, float] = {}  # action_id -> first-seen time
        self.duplicates = 0
        self.replays = 0

    def should_process(self, action_id: int, created_at: float) -> bool:
        """True exactly once per fresh trigger."""
        now = self._world.now
        if now - created_at > self.ttl_s:
            self.replays += 1
            return False
        if action_id in self._seen:
            self.duplicates += 1
            return False
        self._seen[action_id] = now
        self._evict(now)
        return True

    def seen_count(self) -> int:
        return len(self._seen)

    def _evict(self, now: float) -> None:
        if len(self._seen) <= self.max_entries:
            return
        expired = [action_id for action_id, seen_at in self._seen.items()
                   if now - seen_at > self.ttl_s]
        for action_id in expired:
            del self._seen[action_id]
        # Still over budget (a burst of fresh triggers): drop oldest.
        while len(self._seen) > self.max_entries:
            oldest = min(self._seen, key=self._seen.__getitem__)
            del self._seen[oldest]
