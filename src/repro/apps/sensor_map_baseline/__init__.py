"""Facebook Sensor Map built *without* SenSocial (Table 5 baseline).

Functionally equivalent to :mod:`repro.apps.sensor_map`, but every
piece of plumbing the middleware would provide — MQTT session
management, device registration, trigger parsing, one-off sensor
orchestration, classification wiring, upload framing, retry handling,
server-side receiver, user registry, trigger compilation and marker
joining — is re-implemented by hand inside the application, as the
paper's authors did to quantify programming effort (§6.3).  Only the
third-party sensing library (our ESSensorManager stand-in) is shared,
"for a fair measure of programming efforts between the two versions".
"""

from repro.apps.sensor_map_baseline.mobile.service import BaselineSensorMapService
from repro.apps.sensor_map_baseline.server.app import BaselineSensorMapServer

__all__ = ["BaselineSensorMapService", "BaselineSensorMapServer"]
