"""The baseline Facebook Sensor Map server application.

Owns its own MQTT client, registry, upload endpoint (with per-device
sequence de-duplication and acks), receiver and joiner — the full
server plumbing the middleware normally provides.
"""

from __future__ import annotations

from repro.apps.sensor_map_baseline.mobile.uploader import (
    UPLOAD_ACK_PROTOCOL,
    UPLOAD_PROTOCOL,
)
from repro.apps.sensor_map_baseline.server.facebook_receiver import (
    BaselineFacebookReceiver,
)
from repro.apps.sensor_map_baseline.server.marker_joiner import (
    BaselineMarkerJoiner,
    JoinedMarker,
)
from repro.apps.sensor_map_baseline.server.registry import BaselineRegistry
from repro.mqtt.client import MqttClient
from repro.net.errors import UnknownEndpointError
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.plugins.base import OsnPlugin
from repro.simkit.world import World

#: Recently seen upload sequence numbers per device, for dedup.
_DEDUP_WINDOW = 1024


class BaselineSensorMapServer(Endpoint):
    """Self-contained server for the no-middleware sensor map."""

    def __init__(self, world: World, network: Network,
                 address: str = "bsm-server",
                 broker_address: str = "mqtt-broker"):
        self._world = world
        self._network = network
        self.address = network.register(address, self)
        self.mqtt = MqttClient(world, network, client_id="bsm-server",
                               address=f"bsm-mqtt/{address}",
                               broker_address=broker_address)
        self.registry = BaselineRegistry(self.mqtt)
        self.receiver = BaselineFacebookReceiver(self.mqtt, self.registry)
        self.joiner = BaselineMarkerJoiner()
        self.uploads_received = 0
        self.duplicate_uploads = 0
        self.malformed_uploads = 0
        self.acks_sent = 0
        self._seen: dict[str, set[int]] = {}
        self._started = False

    def start(self) -> "BaselineSensorMapServer":
        if not self._started:
            self.mqtt.connect(clean_session=False)
            self.registry.start()
            self._started = True
        return self

    def attach_plugin(self, plugin: OsnPlugin) -> None:
        self.receiver.attach(plugin)

    # -- upload intake ----------------------------------------------------------

    def deliver(self, message: Message) -> None:
        if message.headers.get("protocol") != UPLOAD_PROTOCOL:
            return
        envelope = message.payload
        if not isinstance(envelope, dict) or not {
                "seq", "device_id", "fragment"} <= set(envelope):
            self.malformed_uploads += 1
            return
        fragment = envelope["fragment"]
        if not isinstance(fragment, dict) or "action_id" not in fragment:
            self.malformed_uploads += 1
            return
        # Ack first — duplicates too — so the sender stops retrying.
        self._ack(message.src, envelope["seq"])
        seen = self._seen.setdefault(envelope["device_id"], set())
        if envelope["seq"] in seen:
            self.duplicate_uploads += 1
            return
        seen.add(envelope["seq"])
        if len(seen) > _DEDUP_WINDOW:
            seen.discard(min(seen))
        self.uploads_received += 1
        self.joiner.add_fragment(fragment)

    def _ack(self, device_address: str, sequence: int) -> None:
        try:
            self._network.send(self.address, device_address, {"seq": sequence},
                               headers={"protocol": UPLOAD_ACK_PROTOCOL})
        except UnknownEndpointError:
            return
        self.acks_sent += 1

    # -- map queries ---------------------------------------------------------------

    def markers(self, user_id: str | None = None) -> list[JoinedMarker]:
        return self.joiner.markers(user_id)

    def complete_marker_count(self) -> int:
        return self.joiner.complete_count()
