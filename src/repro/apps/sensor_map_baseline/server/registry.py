"""Hand-rolled user/device registry for the baseline server.

The SenSocial server maintains User and Device instances from MQTT
registrations; the baseline keeps its own table and subscription.
"""

from __future__ import annotations

import json

from repro.apps.sensor_map_baseline.mobile.mqtt_handler import (
    BASELINE_REGISTRATION_FILTER,
)
from repro.mqtt.client import MqttClient


class BaselineRegistry:
    """user_id ↔ device_id bookkeeping."""

    def __init__(self, client: MqttClient):
        self._client = client
        self._device_of: dict[str, str] = {}
        self._user_of: dict[str, str] = {}
        self.registrations = 0

    def start(self) -> None:
        self._client.subscribe(BASELINE_REGISTRATION_FILTER,
                               self._on_registration)

    def device_of(self, user_id: str) -> str | None:
        return self._device_of.get(user_id)

    def user_of(self, device_id: str) -> str | None:
        return self._user_of.get(device_id)

    def user_ids(self) -> list[str]:
        return sorted(self._device_of)

    def _on_registration(self, topic: str, payload: str) -> None:
        try:
            document = json.loads(payload)
            user_id = document["user_id"]
            device_id = document["device_id"]
        except (json.JSONDecodeError, KeyError):
            return  # malformed announcement; nothing to register
        previous = self._device_of.get(user_id)
        if previous is not None and previous != device_id:
            self._user_of.pop(previous, None)
        self._device_of[user_id] = device_id
        self._user_of[device_id] = user_id
        self.registrations += 1
