"""The baseline ``FacebookReceiver``: plug-in intake + trigger fan-out.

Receives captured Facebook actions, looks up the acting user's device,
compiles the application's own trigger format and publishes it — the
work SenSocial's Trigger Manager does internally.
"""

from __future__ import annotations

from repro.apps.sensor_map_baseline.mobile.mqtt_handler import (
    baseline_trigger_topic,
)
from repro.apps.sensor_map_baseline.mobile.trigger_parser import compile_trigger
from repro.apps.sensor_map_baseline.server.registry import BaselineRegistry
from repro.mqtt.client import MqttClient
from repro.osn.actions import OsnAction
from repro.plugins.base import OsnPlugin


class BaselineFacebookReceiver:
    """OSN action → compiled trigger → MQTT publish."""

    def __init__(self, client: MqttClient, registry: BaselineRegistry):
        self._client = client
        self._registry = registry
        self.actions_received = 0
        self.triggers_published = 0
        self.unroutable_actions = 0

    def attach(self, plugin: OsnPlugin) -> None:
        plugin.add_listener(self._on_action)

    def _on_action(self, action: OsnAction) -> None:
        self.actions_received += 1
        device_id = self._registry.device_of(action.user_id)
        if device_id is None:
            self.unroutable_actions += 1
            return
        payload = compile_trigger(action.to_document())
        self._client.publish(baseline_trigger_topic(device_id), payload, qos=1)
        self.triggers_published += 1
