"""Joining uploaded fragments into map markers, by hand.

The with-middleware server gets coupled (context, action) records;
the baseline receives independent per-modality fragments and must
join them by action id, tolerate partial arrivals and keep the result
queryable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class JoinedMarker:
    """One action's joined context, possibly still partial."""

    action_id: int
    user_id: str
    action_type: str
    content: str
    fragments: dict[str, dict[str, Any]] = field(default_factory=dict)

    def modality_value(self, modality: str) -> Any:
        fragment = self.fragments.get(modality)
        return fragment["value"] if fragment is not None else None

    @property
    def activity(self) -> str | None:
        return self.modality_value("accelerometer")

    @property
    def audio(self) -> str | None:
        return self.modality_value("microphone")

    @property
    def position(self) -> tuple[float, float] | None:
        raw = self.modality_value("location")
        if isinstance(raw, dict) and "lon" in raw and "lat" in raw:
            return (raw["lon"], raw["lat"])
        return None

    def is_complete(self, expected_modalities: tuple[str, ...] = (
            "accelerometer", "microphone", "location")) -> bool:
        return all(modality in self.fragments
                   for modality in expected_modalities)


class BaselineMarkerJoiner:
    """Accumulates fragments into joined markers."""

    def __init__(self):
        self._markers: dict[int, JoinedMarker] = {}
        self.fragments_received = 0
        self.duplicate_fragments = 0

    def add_fragment(self, fragment: dict[str, Any]) -> JoinedMarker:
        self.fragments_received += 1
        action_id = fragment["action_id"]
        marker = self._markers.get(action_id)
        if marker is None:
            marker = JoinedMarker(
                action_id=action_id,
                user_id=fragment["user_id"],
                action_type=fragment["action_type"],
                content=fragment.get("content", ""),
            )
            self._markers[action_id] = marker
        if fragment["modality"] in marker.fragments:
            self.duplicate_fragments += 1
        marker.fragments[fragment["modality"]] = fragment
        return marker

    def markers(self, user_id: str | None = None) -> list[JoinedMarker]:
        selected = [marker for marker in self._markers.values()
                    if user_id is None or marker.user_id == user_id]
        return sorted(selected, key=lambda marker: marker.action_id)

    def complete_count(self) -> int:
        return sum(1 for marker in self._markers.values() if marker.is_complete())
