"""Server half of the no-middleware Facebook Sensor Map."""
