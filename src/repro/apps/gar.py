"""The GAR baseline: an app on Google's Activity Recognition API.

"It streams high-level physical activity information, obtained through
Google Play Services, to the server" (§5.2).  Sensing and inference are
outsourced: Google Play Services does not live in the app's user space,
so DDMS cannot see its accelerometer buffers (Table 2's caveat) and its
per-cycle energy lands ~25 % below SenSocial's classified accelerometer
stream (§5.3).
"""

from __future__ import annotations

from typing import Callable

from repro.classify import ActivityClassifier
from repro.device import calibration
from repro.device.battery import EnergyCategory
from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading
from repro.net.network import Network
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

#: Wire size of one classified activity update.
_ACTIVITY_PAYLOAD_BYTES = 26


class GoogleActivityRecognitionApp:
    """Streams classified activity to a server, the Google way."""

    CPU_LOAD_PCT = 0.9

    def __init__(self, world: World, network: Network, phone: Smartphone,
                 server_address: str = "gar-collector",
                 cycle_period_s: float = calibration.DEFAULT_DUTY_CYCLE_SECONDS):
        self._world = world
        self._network = network
        self.phone = phone
        self.server_address = server_address
        self.cycle_period_s = cycle_period_s
        self._task: PeriodicTask | None = None
        self._listeners: list[Callable[[str], None]] = []
        # The inference itself runs outside the app process; this
        # instance only reads labels, so it reuses the ground-truth
        # pipeline without charging the app's classification budget.
        self._oracle = ActivityClassifier(battery=None, cpu=None)
        self.updates_sent = 0
        phone.heap.allocate("gar-library",
                            calibration.HEAP_GAR_LIBRARY_MB,
                            calibration.HEAP_GAR_LIBRARY_OBJECTS)
        phone.cpu.set_load("gar-library", self.CPU_LOAD_PCT)

    def add_listener(self, listener: Callable[[str], None]) -> None:
        """App-level callback receiving each activity label."""
        self._listeners.append(listener)

    def start(self) -> "GoogleActivityRecognitionApp":
        if self._task is None:
            self._task = self._world.scheduler.every(
                self.cycle_period_s, self._cycle, delay=self.cycle_period_s)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self.phone.cpu.clear_load("gar-library")

    def _cycle(self) -> None:
        # One Play-Services activity update: sampling + inference are
        # billed as a single outsourced bundle against this app.
        self.phone.battery.drain(calibration.GAR_CYCLE_MAH, "gar",
                                 EnergyCategory.SAMPLING)
        # Play Services reads the sensor outside this app's process:
        # take the window without billing the app's sampling budget.
        window = self.phone.sensor("accelerometer")._read()
        label = self._infer_label(window)
        self.updates_sent += 1
        for listener in list(self._listeners):
            listener(label)
        if self._network.is_registered(self.server_address):
            self.phone.send(self.server_address, "gar-activity",
                            {"user_id": self.phone.user_id, "activity": label},
                            size=_ACTIVITY_PAYLOAD_BYTES)

    def _infer_label(self, window: list[list[float]]) -> str:
        reading = SensorReading(modality="accelerometer",
                                timestamp=self._world.now, raw=window)
        return self._oracle._infer(reading)[0]
