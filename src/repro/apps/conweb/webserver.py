"""The ConWeb Web server: context-adapted page generation.

A stand-in for the paper's "Web server to host Web pages": it renders
pages whose layout, contrast and content react to the user's latest
context ("displaying higher contrast colors when it is sunny and a user
is outside ... showing gift suggestions to a user who is about to
attend a birthday, as indicated by information automatically retrieved
from OSNs", §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.osn.content import TOPICS
from repro.osn.sentiment import SentimentAnalyzer
from repro.simkit.world import World


@dataclass
class WebPage:
    """One rendered, context-adapted page."""

    url: str
    user_id: str
    generated_at: float
    layout: str = "full"            # full | compact
    contrast: str = "normal"        # normal | high
    headline: str = ""
    suggestions: list[str] = field(default_factory=list)
    context_used: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "user_id": self.user_id,
            "generated_at": self.generated_at,
            "layout": self.layout,
            "contrast": self.contrast,
            "headline": self.headline,
            "suggestions": list(self.suggestions),
            "context_used": dict(self.context_used),
        }


class ConWebServer(Endpoint):
    """Serves pages adapted to per-user context snapshots."""

    def __init__(self, world: World, network: Network,
                 address: str = "conweb-server"):
        self._world = world
        self._network = network
        self.address = network.register(address, self)
        #: user_id -> latest context snapshot, maintained by the
        #: ConWeb SenSocial server application.
        self._context: dict[str, dict[str, Any]] = {}
        self._sentiment = SentimentAnalyzer()
        self.requests_served = 0

    # -- context intake (from the SenSocial server app) ----------------------

    def update_context(self, user_id: str, key: str, value: Any) -> None:
        self._context.setdefault(user_id, {})[key] = value

    def context_of(self, user_id: str) -> dict[str, Any]:
        return dict(self._context.get(user_id, {}))

    # -- page generation ---------------------------------------------------------

    def render(self, user_id: str, url: str) -> WebPage:
        """Generate the context-aware version of ``url`` for the user."""
        context = self._context.get(user_id, {})
        self.requests_served += 1
        page = WebPage(url=url, user_id=user_id,
                       generated_at=self._world.now,
                       context_used=dict(context))
        activity = context.get("physical_activity")
        if activity in ("walking", "running"):
            # On the move: compact layout, big targets.
            page.layout = "compact"
        if context.get("audio_environment") == "not_silent" or \
                activity in ("walking", "running"):
            page.contrast = "high"
        place = context.get("place")
        page.headline = (f"{url} — near you in {place}" if place
                         else f"{url} — your page")
        last_post = context.get("last_post", "")
        if last_post:
            page.suggestions = self._suggest_from_post(last_post)
        return page

    def _suggest_from_post(self, post: str) -> list[str]:
        """Mine the last OSN post for topic + mood-aware suggestions."""
        post_lower = post.lower()
        suggestions = []
        for topic, nouns in sorted(TOPICS.items()):
            if topic in post_lower or any(noun in post_lower for noun in nouns):
                suggestions.append(f"more {topic} for you")
        label = self._sentiment.label(post).value
        if label == "negative":
            suggestions.append("something to cheer you up")
        elif label == "positive":
            suggestions.append("share the good mood")
        return suggestions

    # -- HTTP-ish transport ---------------------------------------------------------

    def deliver(self, message: Message) -> None:
        if message.headers.get("protocol") != "web-request":
            return
        request = message.payload
        page = self.render(request["user_id"], request["url"])
        self._network.send(self.address, message.src, page.to_dict(),
                           headers={"protocol": "web-response"})
