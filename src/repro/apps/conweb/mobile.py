"""ConWeb — mobile side: the browser plus its background service.

The browser opens pages through the simulated Web server; a background
service (``ConWebService`` in §6.2) keeps SenSocial streams of the
user's context flowing to the server while the browser runs, and the
page auto-refreshes every ``T`` seconds so the displayed version tracks
the user's momentary context.  Killing the browser destroys the
streams, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.conweb.webserver import WebPage
from repro.core.common.modality import ModalityType
from repro.core.mobile.manager import MobileSenSocialManager
from repro.simkit.scheduler import PeriodicTask

PageListener = Callable[[WebPage], None]

#: Default auto-refresh period T (user-configurable, §6.2).
DEFAULT_REFRESH_PERIOD_S = 60.0


class ConWebBrowser:
    """A context-aware browser backed by SenSocial streams."""

    def __init__(self, manager: MobileSenSocialManager,
                 web_server_address: str = "conweb-server",
                 refresh_period_s: float = DEFAULT_REFRESH_PERIOD_S):
        self._manager = manager
        self._web_address = web_server_address
        self.refresh_period_s = refresh_period_s
        self.current_page: WebPage | None = None
        self.current_url: str | None = None
        self.pages_loaded = 0
        self._page_listeners: list[PageListener] = []
        self._refresh_task: PeriodicTask | None = None
        self._streams = []
        self._running = False
        manager.phone.on_protocol("web-response", self._on_response)

    # -- browser UI surface -------------------------------------------------

    def start(self) -> "ConWebBrowser":
        """Launch the browser: context streams begin flowing."""
        if self._running:
            return self
        self._running = True
        device = self._manager.get_user(self._manager.get_user_id()).get_device()
        self._streams = [
            device.get_stream(ModalityType.ACCELEROMETER, "classified",
                              send_to_server=True),
            device.get_stream(ModalityType.MICROPHONE, "classified",
                              send_to_server=True),
            device.get_stream(ModalityType.LOCATION, "classified",
                              send_to_server=True),
        ]
        return self

    def open(self, url: str) -> None:
        """Request ``url``; the adapted page arrives asynchronously."""
        if not self._running:
            raise RuntimeError("browser is not running; call start() first")
        self.current_url = url
        self._request()
        if self._refresh_task is None and self.refresh_period_s > 0:
            self._refresh_task = self._manager.world.scheduler.every(
                self.refresh_period_s, self._refresh,
                delay=self.refresh_period_s)

    def on_page(self, listener: PageListener) -> None:
        self._page_listeners.append(listener)

    def stop(self) -> None:
        """Kill the browser: streams are torn down (§6.2)."""
        self._running = False
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            self._refresh_task = None
        for stream in self._streams:
            stream.destroy()
        self._streams = []

    # -- internals ----------------------------------------------------------------

    def _refresh(self) -> None:
        if self._running and self.current_url is not None:
            self._request()

    def _request(self) -> None:
        # The URL carries the user identifier, as in §6.2 ("URL holds
        # the user ID"), so the server can join it with stored context.
        self._manager.phone.send(self._web_address, "web-request", {
            "user_id": self._manager.get_user_id(),
            "url": self.current_url,
        })

    def _on_response(self, payload: dict, message) -> None:
        if not self._running:
            return
        self.pages_loaded += 1
        self.current_page = WebPage(
            url=payload["url"],
            user_id=payload["user_id"],
            generated_at=payload["generated_at"],
            layout=payload["layout"],
            contrast=payload["contrast"],
            headline=payload["headline"],
            suggestions=list(payload["suggestions"]),
            context_used=dict(payload["context_used"]),
        )
        for listener in list(self._page_listeners):
            listener(self.current_page)
