"""ConWeb — the contextual Web browser built with SenSocial (§6.2).

Pages are generated on a (simulated) Web server and adapted to the
requesting user's momentary physical context and OSN activity, both
delivered by SenSocial streams.
"""

from repro.apps.conweb.webserver import ConWebServer, WebPage
from repro.apps.conweb.server import ConWebServerApp
from repro.apps.conweb.mobile import ConWebBrowser

__all__ = ["ConWebBrowser", "ConWebServer", "ConWebServerApp", "WebPage"]
