"""ConWeb — SenSocial server application.

"The SenSocial server component directs the incoming data streams to
the database where it overwrites the latest context information of the
relevant user" (§6.2): this app consumes stream records and OSN actions
and keeps the Web server's per-user context snapshot fresh.
"""

from __future__ import annotations

from repro.apps.conweb.webserver import ConWebServer
from repro.core.common.granularity import Granularity
from repro.core.common.modality import CLASSIFIED_FOR, ModalityType
from repro.core.common.records import StreamRecord
from repro.core.server.manager import ServerSenSocialManager
from repro.osn.actions import OsnAction

_VIRTUAL_OF_SENSOR = {sensor: virtual for virtual, sensor in CLASSIFIED_FOR.items()}


#: Context keys the browser can ask for, and the stream behind each.
_MODALITY_FOR_KEY = {
    "physical_activity": ModalityType.ACCELEROMETER,
    "audio_environment": ModalityType.MICROPHONE,
    "place": ModalityType.LOCATION,
}


class ConWebServerApp:
    """Bridges SenSocial streams into the Web server's context store."""

    def __init__(self, server: ServerSenSocialManager, web: ConWebServer):
        self._server = server
        self._web = web
        self.records_processed = 0
        self.actions_processed = 0
        #: Server-managed context streams per user (remote management).
        self._managed: dict[str, dict[str, object]] = {}
        server.register_listener(self._on_record)
        server.add_action_listener(self._on_action)

    def configure_user_context(self, user_id: str,
                               context_keys: list[str]) -> list[str]:
        """Choose which context drives the user's pages (§6.2).

        "ConWeb can be dynamically configured to present Web pages
        based on the context chosen by the user.  In such a case,
        ConWeb's server application leverages SenSocial's remote stream
        management to dynamically destroy the current SenSocial streams
        and then subscribe to the streams of relevant context data."
        Returns the keys now active.
        """
        unknown = set(context_keys) - set(_MODALITY_FOR_KEY)
        if unknown:
            raise ValueError(f"unknown context keys: {sorted(unknown)}; "
                             f"choose from {sorted(_MODALITY_FOR_KEY)}")
        managed = self._managed.setdefault(user_id, {})
        for key in list(managed):
            if key not in context_keys:
                managed.pop(key).destroy()
        for key in context_keys:
            if key not in managed:
                managed[key] = self._server.create_stream(
                    user_id, _MODALITY_FOR_KEY[key], Granularity.CLASSIFIED)
        return sorted(managed)

    def _on_record(self, record: StreamRecord) -> None:
        self.records_processed += 1
        if record.granularity is Granularity.CLASSIFIED:
            virtual = _VIRTUAL_OF_SENSOR.get(record.modality)
            key = virtual.value if virtual is not None else record.modality.value
            self._web.update_context(record.user_id, key, record.value)
        elif record.modality is ModalityType.LOCATION and \
                isinstance(record.value, dict):
            self._web.update_context(record.user_id, "position",
                                     [record.value["lon"], record.value["lat"]])

    def _on_action(self, action: OsnAction) -> None:
        self.actions_processed += 1
        if action.content:
            self._web.update_context(action.user_id, "last_post", action.content)
        self._web.update_context(action.user_id, "last_action_type",
                                 action.type.value)
