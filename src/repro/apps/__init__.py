"""Prototype applications (§6) and evaluation baselines.

* :mod:`repro.apps.gar` — the Google Activity Recognition comparison
  app of Tables 2 / Figure 4;
* :mod:`repro.apps.sensor_map` — Facebook Sensor Map built *with*
  SenSocial;
* :mod:`repro.apps.sensor_map_baseline` — the same application built
  *without* the middleware (Table 5's programming-effort baseline);
* :mod:`repro.apps.conweb` — the ConWeb contextual Web browser built
  with SenSocial, plus its simulated Web server;
* :mod:`repro.apps.conweb_baseline` — ConWeb without the middleware.
"""
