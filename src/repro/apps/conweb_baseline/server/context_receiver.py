"""Hand-rolled context intake for baseline ConWeb.

Receives the application's own context-update envelopes, de-duplicates
retransmissions by sequence number, acknowledges each envelope back to
the sending device, drops stale out-of-order updates, and forwards
fresh ones to the Web server's per-user context store — the job
:class:`repro.apps.conweb.server.ConWebServerApp` delegates to the
middleware's record listener and MQTT QoS.
"""

from __future__ import annotations

from repro.apps.conweb.webserver import ConWebServer
from repro.apps.conweb_baseline.mobile.upload_queue import (
    ACK_PROTOCOL,
    CONTEXT_PROTOCOL,
)
from repro.net.errors import UnknownEndpointError
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.simkit.world import World

#: Remember this many recent sequence numbers per device for dedup.
_DEDUP_WINDOW = 512


class BaselineContextReceiver(Endpoint):
    """Endpoint collecting context updates for the Web server."""

    def __init__(self, world: World, network: Network, web: ConWebServer,
                 address: str = "bcw-server"):
        self._world = world
        self._network = network
        self._web = web
        self.address = network.register(address, self)
        self.updates_received = 0
        self.duplicates_ignored = 0
        self.malformed_updates = 0
        self.acks_sent = 0
        #: Last applied timestamp per (user, key): stale updates that
        #: arrive out of order must not overwrite fresher context.
        self._latest: dict[tuple[str, str], float] = {}
        #: Recently seen sequence numbers per device, for retransmit
        #: de-duplication (the queue delivers at-least-once).
        self._seen: dict[str, set[int]] = {}

    def deliver(self, message: Message) -> None:
        if message.headers.get("protocol") != CONTEXT_PROTOCOL:
            return
        envelope = message.payload
        if not isinstance(envelope, dict) or not {
                "seq", "device_id", "update"} <= set(envelope):
            self.malformed_updates += 1
            return
        update = envelope["update"]
        if not isinstance(update, dict) or not {
                "user_id", "key", "value", "timestamp"} <= set(update):
            self.malformed_updates += 1
            return
        # Always ack — even duplicates — so the sender stops retrying.
        self._ack(message.src, envelope["seq"])
        seen = self._seen.setdefault(envelope["device_id"], set())
        if envelope["seq"] in seen:
            self.duplicates_ignored += 1
            return
        seen.add(envelope["seq"])
        if len(seen) > _DEDUP_WINDOW:
            seen.discard(min(seen))
        key = (update["user_id"], update["key"])
        if update["timestamp"] < self._latest.get(key, -1.0):
            return  # out-of-order stale update
        self._latest[key] = update["timestamp"]
        self.updates_received += 1
        self._web.update_context(update["user_id"], update["key"],
                                 update["value"])

    def _ack(self, device_address: str, sequence: int) -> None:
        try:
            self._network.send(self.address, device_address,
                               {"seq": sequence},
                               headers={"protocol": ACK_PROTOCOL})
        except UnknownEndpointError:
            return  # device vanished; its retries will give up
        self.acks_sent += 1
