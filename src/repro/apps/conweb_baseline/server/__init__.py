"""Server half of the no-middleware ConWeb."""
