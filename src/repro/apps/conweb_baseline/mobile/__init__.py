"""Mobile half of the no-middleware ConWeb."""
