"""Reliable context upload queue for baseline ConWeb.

The middleware transmits stream records with MQTT QoS-1 semantics for
free.  A stand-alone app has to build the equivalent itself: sequence
numbers, an ack protocol with the server, retransmission timers with
exponential backoff, a bounded pending buffer with drop policy, and
give-up accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.conweb_baseline.mobile.config import UploadPolicy
from repro.device.phone import Smartphone
from repro.net.errors import UnknownEndpointError
from repro.simkit.scheduler import EventHandle
from repro.simkit.world import World

CONTEXT_PROTOCOL = "bcw-context"
ACK_PROTOCOL = "bcw-ack"

_ENVELOPE_BYTES = 90


@dataclass
class _PendingUpload:
    sequence: int
    update: dict[str, Any]
    wire_bytes: int
    attempts: int = 0
    timer: EventHandle | None = None


class UploadQueue:
    """At-least-once delivery of context updates to the app server."""

    def __init__(self, world: World, phone: Smartphone,
                 server_address: str, policy: UploadPolicy):
        self._world = world
        self._phone = phone
        self.server_address = server_address
        self.policy = policy
        self._next_sequence = 1
        self._pending: dict[int, _PendingUpload] = {}
        self.updates_enqueued = 0
        self.updates_acked = 0
        self.updates_dropped = 0
        self.updates_abandoned = 0
        self.retransmissions = 0
        phone.on_protocol(ACK_PROTOCOL, self._on_ack)

    # -- producer side ----------------------------------------------------

    def enqueue(self, update: dict[str, Any], wire_bytes: int) -> bool:
        """Queue one update; returns False when the buffer is full."""
        if len(self._pending) >= self.policy.max_pending:
            self.updates_dropped += 1
            return False
        pending = _PendingUpload(
            sequence=self._next_sequence,
            update=dict(update),
            wire_bytes=wire_bytes,
        )
        self._next_sequence += 1
        self._pending[pending.sequence] = pending
        self.updates_enqueued += 1
        self._transmit(pending)
        return True

    def pending_count(self) -> int:
        return len(self._pending)

    def shutdown(self) -> None:
        """Cancel every retransmission timer; pending data is dropped."""
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # -- wire protocol -------------------------------------------------------

    def _transmit(self, pending: _PendingUpload) -> None:
        pending.attempts += 1
        envelope = {
            "seq": pending.sequence,
            "device_id": self._phone.device_id,
            "update": pending.update,
        }
        try:
            self._phone.send(self.server_address, CONTEXT_PROTOCOL, envelope,
                             size=pending.wire_bytes + _ENVELOPE_BYTES)
        except UnknownEndpointError:
            pass  # server unreachable: the timer below drives the retry
        timeout = (self.policy.ack_timeout_s
                   * self.policy.backoff_factor ** (pending.attempts - 1))
        pending.timer = self._world.scheduler.schedule(
            timeout, self._on_timeout, pending.sequence)

    def _on_timeout(self, sequence: int) -> None:
        pending = self._pending.get(sequence)
        if pending is None:
            return
        if pending.attempts > self.policy.max_retries:
            del self._pending[sequence]
            self.updates_abandoned += 1
            return
        self.retransmissions += 1
        self._transmit(pending)

    def _on_ack(self, payload: dict, message) -> None:
        pending = self._pending.pop(payload.get("seq"), None)
        if pending is None:
            return  # duplicate or late ack
        if pending.timer is not None:
            pending.timer.cancel()
        self.updates_acked += 1
