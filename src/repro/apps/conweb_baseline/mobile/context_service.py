"""Hand-rolled continuous context pipeline for baseline ConWeb.

Re-implements what three SenSocial ``get_stream`` calls provide: a
configuration layer, per-modality duty-cycled sampling loops built on
the sensing library's one-off primitive, classifier instantiation and
dispatch, a reliable (ack + retry) upload queue, connectivity tracking,
and diagnostics — all torn down cleanly when the browser dies.
"""

from __future__ import annotations

from repro.apps.conweb_baseline.mobile.config import ConWebConfig
from repro.apps.conweb_baseline.mobile.connectivity import ConnectivityMonitor
from repro.apps.conweb_baseline.mobile.diagnostics import Diagnostics
from repro.apps.conweb_baseline.mobile.duty_cycler import DutyCycler
from repro.apps.conweb_baseline.mobile.upload_queue import (
    ACK_PROTOCOL,
    CONTEXT_PROTOCOL,
    UploadQueue,
)
from repro.classify.activity import ActivityClassifier
from repro.classify.audio import AudioClassifier
from repro.classify.location import LocationClassifier
from repro.device.mobility import CityRegistry
from repro.device.phone import Smartphone
from repro.device.sensors.base import SensorReading
from repro.sensing.manager import ESSensorManager
from repro.simkit.world import World

__all__ = ["ACK_PROTOCOL", "CONTEXT_PROTOCOL", "BaselineContextService"]

#: Wire sizes for classified context updates, bytes.
_UPDATE_BYTES = {"accelerometer": 30, "microphone": 24, "location": 38}

#: The context key each modality's classification feeds.
_CONTEXT_KEYS = {
    "accelerometer": "physical_activity",
    "microphone": "audio_environment",
    "location": "place",
}


class BaselineContextService:
    """Samples, classifies and reliably uploads the browser's context."""

    def __init__(self, world: World, phone: Smartphone,
                 server_address: str, cities: CityRegistry | None = None,
                 config: ConWebConfig | None = None):
        self._world = world
        self._phone = phone
        self.config = (config if config is not None
                       else ConWebConfig(context_server_address=server_address)
                       ).validate()
        self.server_address = server_address
        self._sensing = ESSensorManager.get_for(world, phone)
        cities = cities if cities is not None else CityRegistry.europe()
        self._classifiers = {
            "accelerometer": ActivityClassifier(phone.battery, phone.cpu),
            "microphone": AudioClassifier(phone.battery, phone.cpu),
            "location": LocationClassifier(cities, phone.battery, phone.cpu),
        }
        self.diagnostics = Diagnostics(world)
        self.uploads = UploadQueue(world, phone, server_address,
                                   self.config.upload)
        self.connectivity = ConnectivityMonitor(world)
        self._cycler = DutyCycler(world, self._sensing, self._on_reading)
        self.running = False
        # Acks feed both the queue (via phone protocol dispatch, wired
        # inside UploadQueue) and the connectivity estimate.
        self._acks_seen = 0
        self._wrap_ack_handler()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.connectivity.start()
        for modality in self.config.modalities:
            self._cycler.add_modality(modality,
                                      self.config.periods_s[modality])
        self.diagnostics.log("info", "service-start",
                             ",".join(self.config.modalities))

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self._cycler.stop()
        self.connectivity.stop()
        self.uploads.shutdown()
        self.diagnostics.log("info", "service-stop")

    # -- status used by the browser UI ----------------------------------------

    @property
    def updates_sent(self) -> int:
        return self.uploads.updates_enqueued

    @property
    def updates_failed(self) -> int:
        return self.uploads.updates_dropped + self.uploads.updates_abandoned

    def status(self) -> dict:
        return {
            "running": self.running,
            "online": self.connectivity.online,
            "pending_uploads": self.uploads.pending_count(),
            "diagnostics": self.diagnostics.snapshot(),
        }

    # -- pipeline ----------------------------------------------------------------

    def _on_reading(self, reading: SensorReading) -> None:
        if not self.running:
            return
        classifier = self._classifiers.get(reading.modality)
        if classifier is None:
            self.diagnostics.log("warn", "unknown-modality", reading.modality)
            return
        classified = classifier.classify(reading)
        self.diagnostics.count(f"classified.{reading.modality}")
        update = {
            "user_id": self._phone.user_id,
            "key": _CONTEXT_KEYS[reading.modality],
            "value": classified.label,
            "timestamp": reading.timestamp,
        }
        accepted = self.uploads.enqueue(update, _UPDATE_BYTES[reading.modality])
        if not accepted:
            self.diagnostics.count("uploads.dropped")
            self.diagnostics.log("warn", "upload-buffer-full",
                                 reading.modality)

    def _wrap_ack_handler(self) -> None:
        """Chain the connectivity monitor onto the queue's ack handler."""
        queue_handler = self.uploads._on_ack

        def handler(payload, message):
            self._acks_seen += 1
            self.connectivity.note_ack()
            queue_handler(payload, message)

        self._phone.on_protocol(ACK_PROTOCOL, handler)
