"""Connectivity tracking for baseline ConWeb.

Decides whether the app believes the context server is reachable,
based on recent ack traffic — so the UI can show an offline badge and
the upload queue's behaviour can be reasoned about.  The middleware's
MQTT session tracks this implicitly; a stand-alone app must not.
"""

from __future__ import annotations

from typing import Callable

from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

StateListener = Callable[[bool], None]


class ConnectivityMonitor:
    """Online/offline estimation from ack recency."""

    CHECK_PERIOD_S = 10.0

    def __init__(self, world: World, offline_after_s: float = 30.0):
        self._world = world
        self.offline_after_s = offline_after_s
        self._last_ack: float | None = None
        self._online = True  # optimistic until proven otherwise
        self._listeners: list[StateListener] = []
        self._task: PeriodicTask | None = None
        self.transitions = 0

    @property
    def online(self) -> bool:
        return self._online

    def start(self) -> "ConnectivityMonitor":
        if self._task is None:
            self._task = self._world.scheduler.every(
                self.CHECK_PERIOD_S, self._check,
                delay=self.CHECK_PERIOD_S)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def on_change(self, listener: StateListener) -> None:
        self._listeners.append(listener)

    def note_ack(self) -> None:
        """Call on every server ack; may flip the state to online."""
        self._last_ack = self._world.now
        self._set_online(True)

    def _check(self) -> None:
        if self._last_ack is None:
            return  # nothing sent yet; stay optimistic
        silent_for = self._world.now - self._last_ack
        self._set_online(silent_for < self.offline_after_s)

    def _set_online(self, online: bool) -> None:
        if online == self._online:
            return
        self._online = online
        self.transitions += 1
        for listener in list(self._listeners):
            listener(online)
