"""Diagnostics for baseline ConWeb: counters and a bounded event log.

Operational visibility the middleware ships with for free (stream
state, delivery counters) has to be rebuilt by a stand-alone app.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.simkit.world import World


@dataclass(frozen=True)
class LogEntry:
    time: float
    level: str
    event: str
    detail: str


class Diagnostics:
    """Counter registry plus a ring-buffer event log."""

    LEVELS = ("debug", "info", "warn", "error")

    def __init__(self, world: World, log_capacity: int = 200):
        self._world = world
        self._counters: dict[str, int] = {}
        self._log: deque[LogEntry] = deque(maxlen=log_capacity)

    def count(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def log(self, level: str, event: str, detail: str = "") -> None:
        if level not in self.LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._log.append(LogEntry(self._world.now, level, event, detail))

    def recent(self, level: str | None = None, limit: int = 20) -> list[LogEntry]:
        entries = [entry for entry in self._log
                   if level is None or entry.level == level]
        return entries[-limit:]

    def snapshot(self) -> dict:
        """One dict for a support bundle / status page."""
        return {
            "time": self._world.now,
            "counters": dict(sorted(self._counters.items())),
            "errors": [entry.event for entry in self.recent("error")],
        }
