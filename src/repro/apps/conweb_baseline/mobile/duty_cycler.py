"""Hand-rolled duty cycling for baseline ConWeb.

SenSocial streams duty-cycle themselves; a stand-alone app that only
has the sensing library's one-off primitive must schedule its own
sampling loops — per-modality periods, staggered starts so sensors
don't all fire in the same instant, pause/resume, and reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.device.sensors.base import SensorReading
from repro.sensing.manager import ESSensorManager
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

ReadingCallback = Callable[[SensorReading], None]

#: Stagger between the start of consecutive modality loops, so a
#: three-modality app doesn't slam every sensor at once.
_STAGGER_S = 2.0


@dataclass
class _Loop:
    modality: str
    period_s: float
    task: PeriodicTask
    cycles: int = 0


class DutyCycler:
    """Periodic one-off sensing loops, one per modality."""

    def __init__(self, world: World, sensing: ESSensorManager,
                 callback: ReadingCallback):
        self._world = world
        self._sensing = sensing
        self._callback = callback
        self._loops: dict[str, _Loop] = {}
        self._paused = False

    def add_modality(self, modality: str, period_s: float) -> None:
        """Start (or re-period) the sampling loop for ``modality``."""
        if period_s <= 0:
            raise ValueError(f"period must be > 0, got {period_s}")
        existing = self._loops.pop(modality, None)
        if existing is not None:
            existing.task.cancel()
        stagger = len(self._loops) * _STAGGER_S
        task = self._world.scheduler.every(
            period_s, self._cycle, modality, delay=stagger + 1.0)
        self._loops[modality] = _Loop(modality, period_s, task)

    def remove_modality(self, modality: str) -> None:
        loop = self._loops.pop(modality, None)
        if loop is not None:
            loop.task.cancel()

    def pause(self) -> None:
        """Loops keep ticking but skip sampling (cheap suspend)."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def stop(self) -> None:
        for loop in self._loops.values():
            loop.task.cancel()
        self._loops.clear()

    def modalities(self) -> list[str]:
        return sorted(self._loops)

    def cycles_of(self, modality: str) -> int:
        loop = self._loops.get(modality)
        return loop.cycles if loop is not None else 0

    def _cycle(self, modality: str) -> None:
        loop = self._loops.get(modality)
        if loop is None or self._paused:
            return
        loop.cycles += 1
        self._sensing.sense_once(modality, self._callback)
