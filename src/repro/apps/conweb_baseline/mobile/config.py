"""Application configuration handling for baseline ConWeb.

SenSocial apps pass a settings object to the middleware and are done;
a stand-alone app must define its own configuration schema, defaults,
validation and (de)serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

SUPPORTED_MODALITIES = ("accelerometer", "microphone", "location")

DEFAULT_PERIODS_S = {
    "accelerometer": 60.0,
    "microphone": 60.0,
    "location": 60.0,
}


class ConfigError(Exception):
    """Raised for invalid application configuration."""


@dataclass
class UploadPolicy:
    """Retry behaviour of the context uploader."""

    ack_timeout_s: float = 8.0
    max_retries: int = 4
    backoff_factor: float = 2.0
    max_pending: int = 200

    def validate(self) -> None:
        if self.ack_timeout_s <= 0:
            raise ConfigError(f"ack_timeout_s must be > 0, got {self.ack_timeout_s}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_pending <= 0:
            raise ConfigError(f"max_pending must be > 0, got {self.max_pending}")


@dataclass
class ConWebConfig:
    """Everything the baseline ConWeb app can be configured with."""

    modalities: tuple[str, ...] = SUPPORTED_MODALITIES
    periods_s: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PERIODS_S))
    context_server_address: str = "bcw-server"
    web_server_address: str = "conweb-server"
    refresh_period_s: float = 60.0
    upload: UploadPolicy = field(default_factory=UploadPolicy)

    def validate(self) -> "ConWebConfig":
        for modality in self.modalities:
            if modality not in SUPPORTED_MODALITIES:
                raise ConfigError(
                    f"unsupported modality {modality!r}; supported: "
                    f"{SUPPORTED_MODALITIES}")
            period = self.periods_s.get(modality)
            if period is None:
                raise ConfigError(f"no sampling period for {modality!r}")
            if period <= 0:
                raise ConfigError(
                    f"period for {modality!r} must be > 0, got {period}")
        if self.refresh_period_s < 0:
            raise ConfigError(
                f"refresh_period_s must be >= 0, got {self.refresh_period_s}")
        self.upload.validate()
        return self

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "ConWebConfig":
        """Parse a configuration dict, applying defaults."""
        known = {"modalities", "periods_s", "context_server_address",
                 "web_server_address", "refresh_period_s", "upload"}
        unknown = set(document) - known
        if unknown:
            raise ConfigError(f"unknown configuration keys: {sorted(unknown)}")
        upload_document = document.get("upload", {})
        config = cls(
            modalities=tuple(document.get("modalities", SUPPORTED_MODALITIES)),
            periods_s={**DEFAULT_PERIODS_S,
                       **document.get("periods_s", {})},
            context_server_address=document.get("context_server_address",
                                                "bcw-server"),
            web_server_address=document.get("web_server_address",
                                            "conweb-server"),
            refresh_period_s=float(document.get("refresh_period_s", 60.0)),
            upload=UploadPolicy(**upload_document),
        )
        return config.validate()
