"""The baseline ConWeb browser.

Same UI surface as :class:`repro.apps.conweb.mobile.ConWebBrowser`, but
wired to the hand-rolled context service instead of SenSocial streams.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.conweb.webserver import WebPage
from repro.apps.conweb_baseline.mobile.context_service import (
    BaselineContextService,
)
from repro.device.mobility import CityRegistry
from repro.device.phone import Smartphone
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World

PageListener = Callable[[WebPage], None]


class BaselineConWebBrowser:
    """Context-aware browsing without the middleware."""

    def __init__(self, world: World, phone: Smartphone,
                 web_server_address: str = "conweb-server",
                 context_server_address: str = "bcw-server",
                 refresh_period_s: float = 60.0,
                 cities: CityRegistry | None = None):
        self._world = world
        self._phone = phone
        self._web_address = web_server_address
        self.refresh_period_s = refresh_period_s
        self.context_service = BaselineContextService(
            world, phone, context_server_address, cities)
        self.current_page: WebPage | None = None
        self.current_url: str | None = None
        self.pages_loaded = 0
        self._listeners: list[PageListener] = []
        self._refresh_task: PeriodicTask | None = None
        self._running = False
        phone.on_protocol("web-response", self._on_response)

    def start(self) -> "BaselineConWebBrowser":
        if not self._running:
            self._running = True
            self.context_service.start()
        return self

    def open(self, url: str) -> None:
        if not self._running:
            raise RuntimeError("browser is not running; call start() first")
        self.current_url = url
        self._request()
        if self._refresh_task is None and self.refresh_period_s > 0:
            self._refresh_task = self._world.scheduler.every(
                self.refresh_period_s, self._refresh,
                delay=self.refresh_period_s)

    def on_page(self, listener: PageListener) -> None:
        self._listeners.append(listener)

    def stop(self) -> None:
        self._running = False
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            self._refresh_task = None
        self.context_service.stop()

    def _refresh(self) -> None:
        if self._running and self.current_url is not None:
            self._request()

    def _request(self) -> None:
        self._phone.send(self._web_address, "web-request", {
            "user_id": self._phone.user_id,
            "url": self.current_url,
        })

    def _on_response(self, payload: dict, message) -> None:
        if not self._running:
            return
        self.pages_loaded += 1
        self.current_page = WebPage(
            url=payload["url"],
            user_id=payload["user_id"],
            generated_at=payload["generated_at"],
            layout=payload["layout"],
            contrast=payload["contrast"],
            headline=payload["headline"],
            suggestions=list(payload["suggestions"]),
            context_used=dict(payload["context_used"]),
        )
        for listener in list(self._listeners):
            listener(self.current_page)
