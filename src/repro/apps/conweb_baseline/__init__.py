"""ConWeb built *without* SenSocial (Table 5 baseline).

Functionally equivalent to :mod:`repro.apps.conweb`, but the continuous
context pipeline — duty-cycled sampling, classification, upload
framing, lifecycle tied to the browser, server-side context intake —
is re-implemented inside the application.
"""

from repro.apps.conweb_baseline.mobile.browser import BaselineConWebBrowser
from repro.apps.conweb_baseline.server.context_receiver import (
    BaselineContextReceiver,
)

__all__ = ["BaselineConWebBrowser", "BaselineContextReceiver"]
