"""Facebook Sensor Map, built *with* SenSocial (§6.1).

Displays a user's (and their circle's) Facebook activity on a map,
each marker coupling the OSN action with the physical context sampled
as the action was made.
"""

from repro.apps.sensor_map.mobile import FacebookSensorMapService
from repro.apps.sensor_map.server import FacebookSensorMapServer, MapMarker

__all__ = ["FacebookSensorMapService", "FacebookSensorMapServer", "MapMarker"]
