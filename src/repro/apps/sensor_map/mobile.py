"""Facebook Sensor Map — mobile side (the Figure 7 code, in Python).

A long-running background service that subscribes to streams of
classified accelerometer, classified microphone and raw location data,
each filtered on the user's Facebook activity, and keeps the resulting
(context, action) markers in a local store for the on-phone map view.
"""

from __future__ import annotations

from repro.core.common.conditions import Condition, Operator
from repro.core.common.filters import Filter
from repro.core.common.modality import ModalityType, ModalityValue
from repro.core.common.records import StreamRecord
from repro.core.mobile.manager import MobileSenSocialManager
from repro.docstore import DocumentStore


class FacebookSensorMapService:
    """The ``FacebookSensorMapService`` background service of §6.1."""

    def __init__(self, manager: MobileSenSocialManager):
        self._manager = manager
        #: Local SQLite stand-in holding the markers shown on the map.
        self.local_store = DocumentStore("sensor-map-local")
        self.markers = self.local_store["markers"]

        # --- the Figure 7 snippet, line for line -----------------------
        uid = manager.get_user_id()
        user = manager.get_user(uid)
        device = user.get_device()
        s1 = device.get_stream(ModalityType.ACCELEROMETER, "classified",
                               send_to_server=True)
        s2 = device.get_stream(ModalityType.MICROPHONE, "classified",
                               send_to_server=True)
        s3 = device.get_stream(ModalityType.LOCATION, "raw",
                               send_to_server=True)
        conditions = [Condition(ModalityType.FACEBOOK_ACTIVITY,
                                Operator.EQUALS, ModalityValue.ACTIVE)]
        stream_filter = Filter(conditions)
        s1 = s1.set_filter(stream_filter)
        s2 = s2.set_filter(stream_filter)
        s3 = s3.set_filter(stream_filter)
        # ----------------------------------------------------------------

        self.streams = [s1, s2, s3]
        for stream in self.streams:
            stream.register_listener(self._on_record)

    def _on_record(self, record: StreamRecord) -> None:
        """Store the coupled (context, action) sample locally."""
        self.markers.insert_one(record.to_dict())

    def marker_count(self) -> int:
        return len(self.markers)

    def markers_for_action(self, action_id: int) -> list[dict]:
        """Every modality sampled for one OSN action."""
        return list(self.markers.find({"osn_action.action_id": action_id}))

    def stop(self) -> None:
        for stream in self.streams:
            stream.destroy()
