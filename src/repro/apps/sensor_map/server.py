"""Facebook Sensor Map — server side.

Stores every incoming coupled record and joins the per-modality samples
of one OSN action into a single map marker "allowing complex OSN and
context-based multiuser querying" and real-time navigable maps (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.common.modality import ModalityType
from repro.core.common.records import StreamRecord
from repro.core.server.manager import ServerSenSocialManager


@dataclass
class MapMarker:
    """One point on the map: an OSN action plus its physical context."""

    user_id: str
    action_id: int
    action_type: str
    content: str
    timestamp: float
    lon: float | None = None
    lat: float | None = None
    activity: str | None = None
    audio: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def is_complete(self) -> bool:
        """Has every Figure 7 modality arrived?"""
        return (self.lon is not None and self.activity is not None
                and self.audio is not None)


class FacebookSensorMapServer:
    """The server application behind the navigable maps."""

    def __init__(self, server: ServerSenSocialManager):
        self._server = server
        self.markers_collection = server.database.store["map_markers"]
        self._markers: dict[int, MapMarker] = {}
        server.register_listener(self._on_record)

    # -- queries the map UI runs ------------------------------------------

    def markers(self, user_id: str | None = None) -> list[MapMarker]:
        selected = [marker for marker in self._markers.values()
                    if user_id is None or marker.user_id == user_id]
        return sorted(selected, key=lambda marker: marker.timestamp)

    def markers_of_circle(self, user_id: str) -> list[MapMarker]:
        """Markers of the user and their OSN friends (the §6.1 map)."""
        circle = set(self._server.database.friends_of(user_id)) | {user_id}
        return [marker for marker in self.markers()
                if marker.user_id in circle]

    def complete_marker_count(self) -> int:
        return sum(1 for marker in self._markers.values()
                   if marker.is_complete())

    # -- record intake ----------------------------------------------------------

    def _on_record(self, record: StreamRecord) -> None:
        if record.osn_action is None:
            return
        action = record.osn_action
        marker = self._markers.get(action["action_id"])
        if marker is None:
            marker = MapMarker(
                user_id=record.user_id,
                action_id=action["action_id"],
                action_type=action["type"],
                content=action.get("content", ""),
                timestamp=record.timestamp,
            )
            self._markers[action["action_id"]] = marker
        if record.modality is ModalityType.LOCATION:
            if isinstance(record.value, dict):
                marker.lon = record.value.get("lon")
                marker.lat = record.value.get("lat")
            else:  # classified location: a place name
                marker.extra["place"] = record.value
        elif record.modality is ModalityType.ACCELEROMETER:
            marker.activity = record.value
        elif record.modality is ModalityType.MICROPHONE:
            marker.audio = record.value
        else:
            marker.extra[record.modality.value] = record.value
        self.markers_collection.insert_one(record.to_dict())
