"""Facebook plug-in: webhook push with the platform's notification delay.

"A mobile user needs to add the Facebook plug-in to his Facebook
profile, so that actions such as posts, comments and likes are captured
and forwarded to a PHP script on the server" (§4).  The dominant cost
is Facebook itself: Table 3 measures ~46 s from action to server, with
the middleware adding only ~9 s on top.
"""

from __future__ import annotations

from repro.device import calibration
from repro.net.latency import GaussianLatency, LatencyModel
from repro.osn.actions import OsnAction
from repro.osn.service import OsnService
from repro.plugins.base import OsnPlugin
from repro.simkit.world import World


class FacebookPlugin(OsnPlugin):
    """Push-based capture of posts, comments and likes."""

    def __init__(self, world: World, service: OsnService,
                 notify_delay: LatencyModel | None = None):
        super().__init__(world, service)
        if notify_delay is None:
            notify_delay = GaussianLatency(
                calibration.FACEBOOK_NOTIFY_MEAN_S,
                calibration.FACEBOOK_NOTIFY_SIGMA_S,
                floor=1.0)
        self._notify_delay = notify_delay
        self._subscribed = False

    def start(self) -> None:
        if not self._subscribed:
            self._service.subscribe_webhook(
                "sensocial-facebook", self._on_webhook, delay=self._notify_delay)
            self._subscribed = True
        self.started = True

    def stop(self) -> None:
        # The platform keeps the webhook; we just stop forwarding.
        self.started = False

    def _on_webhook(self, action: OsnAction) -> None:
        if self.started:
            self._emit(action)
