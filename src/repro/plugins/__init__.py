"""OSN plug-ins: how SenSocial taps into platform data (§4).

The Facebook plug-in is added to the user's profile and pushes actions
to the server's receiver script after the platform's notification
delay; the Twitter plug-in lives entirely server-side and actively
polls each authorised user's timeline.
"""

from repro.plugins.base import OsnPlugin
from repro.plugins.facebook import FacebookPlugin
from repro.plugins.twitter import TwitterPlugin

__all__ = ["FacebookPlugin", "OsnPlugin", "TwitterPlugin"]
