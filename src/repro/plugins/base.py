"""Plug-in base class."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.osn.actions import OsnAction
from repro.osn.service import OsnService
from repro.simkit.world import World

#: Server-side listener invoked for every captured OSN action.
ActionListener = Callable[[OsnAction], None]


class OsnPlugin(ABC):
    """Captures a platform's user actions and forwards them server-side."""

    def __init__(self, world: World, service: OsnService):
        self._world = world
        self._service = service
        self._listeners: list[ActionListener] = []
        self._users: set[str] = set()
        self.actions_captured = 0
        self.started = False

    @property
    def platform(self) -> str:
        return self._service.platform

    def add_listener(self, listener: ActionListener) -> None:
        """Register a server-side consumer of captured actions."""
        self._listeners.append(listener)

    def remove_listener(self, listener: ActionListener) -> None:
        """Detach a consumer (idempotent).

        Used when a 1-shard cluster converts to multi-shard mode: the
        action intake moves from the worker to the coordinator, and the
        worker's listener must stop firing or every action would be
        accounted twice.
        """
        if listener in self._listeners:
            self._listeners.remove(listener)

    def register_user(self, user_id: str) -> None:
        """The user authenticates the plug-in (OAuth / profile add, §4)."""
        self._service.authorize_app(user_id)
        self._users.add(user_id)

    def registered_users(self) -> list[str]:
        return sorted(self._users)

    @abstractmethod
    def start(self) -> None:
        """Begin capturing actions."""

    @abstractmethod
    def stop(self) -> None:
        """Stop capturing actions."""

    def _emit(self, action: OsnAction) -> None:
        if action.user_id not in self._users:
            return
        self.actions_captured += 1
        for listener in list(self._listeners):
            listener(action)
