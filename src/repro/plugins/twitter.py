"""Twitter plug-in: server-side polling of authorised users' timelines.

"The Twitter plug-in comprises of PHP files that completely resides on
the server and periodically queries data from the Twitter server for
each user that has authenticated SenSocial via OAuth" (§4).  Because it
actively scans, its capture delay is bounded by the poll period —
"arbitrarily short" in the paper's words (§5.4).
"""

from __future__ import annotations

from repro.device import calibration
from repro.osn.service import OsnService
from repro.plugins.base import OsnPlugin
from repro.simkit.scheduler import PeriodicTask
from repro.simkit.world import World


class TwitterPlugin(OsnPlugin):
    """Poll-based capture of tweets and other timeline actions."""

    def __init__(self, world: World, service: OsnService,
                 poll_period_s: float = calibration.TWITTER_POLL_PERIOD_S):
        super().__init__(world, service)
        if poll_period_s <= 0:
            raise ValueError(f"poll period must be > 0, got {poll_period_s}")
        self.poll_period_s = poll_period_s
        self._last_poll: dict[str, float] = {}
        self._task: PeriodicTask | None = None
        self.polls_performed = 0

    def start(self) -> None:
        if self._task is None:
            self._task = self._world.scheduler.every(
                self.poll_period_s, self._poll_all, delay=self.poll_period_s)
        self.started = True

    def stop(self) -> None:
        self.started = False
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _poll_all(self) -> None:
        for user_id in sorted(self._users):
            since = self._last_poll.get(user_id, -1.0)
            self.polls_performed += 1
            for action in self._service.timeline_since(user_id, since):
                self._emit(action)
            self._last_poll[user_id] = self._world.now
