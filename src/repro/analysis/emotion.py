"""Emotion propagation analysis.

Attaches to a running SenSocial server, scores every captured post with
the sentiment analyser, pairs it with the coupled physical context, and
answers the introduction's research questions: per-user mood, mood of a
user's OSN neighbourhood, mood–neighbourhood correlation (a crude
propagation signal), and mood by physical context.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.core.common.records import StreamRecord
from repro.core.server.manager import ServerSenSocialManager
from repro.osn.actions import OsnAction
from repro.osn.sentiment import SentimentAnalyzer
from repro.analysis.timeseries import TimeBinnedSeries


def pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation; 0.0 for degenerate inputs."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


@dataclass(frozen=True)
class MoodSummary:
    """One user's aggregate mood."""

    user_id: str
    posts: int
    mean_score: float
    neighbourhood_score: float


class EmotionStudy:
    """Collects sentiment + context observations from a server."""

    def __init__(self, server: ServerSenSocialManager,
                 analyzer: SentimentAnalyzer | None = None,
                 bin_width_s: float = 600.0):
        self._server = server
        self._analyzer = analyzer if analyzer is not None else SentimentAnalyzer()
        self._scores: dict[str, list[float]] = defaultdict(list)
        self._mood_series = TimeBinnedSeries(bin_width_s)
        #: sentiment scores grouped by the coupled activity label.
        self._by_context: dict[str, list[float]] = defaultdict(list)
        self._score_by_action: dict[int, float] = {}
        server.add_action_listener(self._on_action)
        server.register_listener(self._on_record)

    # -- intake -----------------------------------------------------------

    def _on_action(self, action: OsnAction) -> None:
        if not action.content:
            return
        score = self._analyzer.score(action.content)
        self._scores[action.user_id].append(score)
        self._mood_series.add(action.created_at, score)
        self._score_by_action[action.action_id] = score

    def _on_record(self, record: StreamRecord) -> None:
        if record.osn_action is None or not isinstance(record.value, str):
            return
        score = self._score_by_action.get(record.osn_action["action_id"])
        if score is not None:
            self._by_context[record.value].append(score)

    # -- results -----------------------------------------------------------

    def observed_users(self) -> list[str]:
        return sorted(self._scores)

    def mood_of(self, user_id: str) -> float:
        scores = self._scores.get(user_id, [])
        return sum(scores) / len(scores) if scores else 0.0

    def neighbourhood_mood_of(self, user_id: str) -> float:
        scores = [score for friend in self._server.database.friends_of(user_id)
                  for score in self._scores.get(friend, [])]
        return sum(scores) / len(scores) if scores else 0.0

    def summaries(self) -> list[MoodSummary]:
        return [MoodSummary(
            user_id=user_id,
            posts=len(self._scores[user_id]),
            mean_score=self.mood_of(user_id),
            neighbourhood_score=self.neighbourhood_mood_of(user_id),
        ) for user_id in self.observed_users()]

    def mood_assortativity(self) -> float:
        """Correlation between each user's mood and their circle's.

        The propagation signal the introduction asks about: positive
        values mean moods cluster along OSN links.
        """
        own, neighbourhood = [], []
        for summary in self.summaries():
            if summary.posts == 0:
                continue
            own.append(summary.mean_score)
            neighbourhood.append(summary.neighbourhood_score)
        return pearson(own, neighbourhood)

    def mood_by_context(self) -> dict[str, float]:
        """Mean sentiment grouped by the coupled activity/context label."""
        return {label: sum(scores) / len(scores)
                for label, scores in sorted(self._by_context.items())}

    def global_mood_series(self) -> list[tuple[float, float]]:
        """Time-binned mean sentiment across the whole population."""
        return self._mood_series.bin_means()
