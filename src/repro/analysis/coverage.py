"""Context coverage reports.

Answers "how much of each user's day did we actually observe, and in
which states?" — the sanity check any sensing study runs before trusting
its data.  Consumes stream records (live via a server listener, or
post-hoc from the server database).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.common.granularity import Granularity
from repro.core.common.records import StreamRecord
from repro.core.server.manager import ServerSenSocialManager


@dataclass
class UserCoverage:
    """Observation counts for one user."""

    user_id: str
    records: int = 0
    first_seen: float | None = None
    last_seen: float | None = None
    #: modality value -> label -> count (classified records only).
    label_counts: dict[str, dict[str, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int)))

    @property
    def observed_span_s(self) -> float:
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        return self.last_seen - self.first_seen

    def label_fraction(self, modality: str, label: str) -> float:
        """Share of this modality's classified samples with ``label``."""
        counts = self.label_counts.get(modality)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get(label, 0) / total


class CoverageReport:
    """Accumulates records into per-user coverage summaries."""

    def __init__(self, server: ServerSenSocialManager | None = None):
        self._users: dict[str, UserCoverage] = {}
        if server is not None:
            server.register_listener(self.observe)

    def observe(self, record: StreamRecord) -> None:
        coverage = self._users.get(record.user_id)
        if coverage is None:
            coverage = UserCoverage(record.user_id)
            self._users[record.user_id] = coverage
        coverage.records += 1
        if coverage.first_seen is None:
            coverage.first_seen = record.timestamp
        coverage.last_seen = record.timestamp
        if record.granularity is Granularity.CLASSIFIED and \
                isinstance(record.value, str):
            coverage.label_counts[record.modality.value][record.value] += 1

    def user_ids(self) -> list[str]:
        return sorted(self._users)

    def coverage_of(self, user_id: str) -> UserCoverage:
        coverage = self._users.get(user_id)
        return coverage if coverage is not None else UserCoverage(user_id)

    def total_records(self) -> int:
        return sum(coverage.records for coverage in self._users.values())

    def summary_rows(self) -> list[tuple[str, int, float]]:
        """(user, records, observed span seconds) per user."""
        return [(user_id, self._users[user_id].records,
                 self._users[user_id].observed_span_s)
                for user_id in self.user_ids()]
