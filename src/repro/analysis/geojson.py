"""GeoJSON export of Facebook Sensor Map markers.

The §6.1 application presents its data "as a set of navigable maps";
this helper turns joined markers into a standard GeoJSON
FeatureCollection any map library can render.
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.sensor_map.server import MapMarker


def markers_to_geojson(markers: Iterable[MapMarker],
                       include_incomplete: bool = False) -> dict:
    """Build a GeoJSON FeatureCollection from map markers."""
    features = []
    for marker in markers:
        if marker.lon is None or marker.lat is None:
            if not include_incomplete:
                continue
            geometry = None
        else:
            geometry = {"type": "Point",
                        "coordinates": [marker.lon, marker.lat]}
        features.append({
            "type": "Feature",
            "geometry": geometry,
            "properties": {
                "user_id": marker.user_id,
                "action_id": marker.action_id,
                "action_type": marker.action_type,
                "content": marker.content,
                "timestamp": marker.timestamp,
                "activity": marker.activity,
                "audio": marker.audio,
                **marker.extra,
            },
        })
    return {"type": "FeatureCollection", "features": features}
