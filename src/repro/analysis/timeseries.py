"""Time-binned series utilities."""

from __future__ import annotations

from collections import defaultdict


class TimeBinnedSeries:
    """Scalar observations bucketed into fixed-width time bins."""

    def __init__(self, bin_width_s: float):
        if bin_width_s <= 0:
            raise ValueError(f"bin width must be > 0, got {bin_width_s}")
        self.bin_width_s = bin_width_s
        self._bins: dict[int, list[float]] = defaultdict(list)

    def add(self, time: float, value: float) -> None:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        self._bins[int(time // self.bin_width_s)].append(value)

    def __len__(self) -> int:
        return sum(len(values) for values in self._bins.values())

    def bin_means(self) -> list[tuple[float, float]]:
        """(bin start time, mean value) for every non-empty bin."""
        return [(index * self.bin_width_s,
                 sum(values) / len(values))
                for index, values in sorted(self._bins.items())]

    def bin_counts(self) -> list[tuple[float, int]]:
        return [(index * self.bin_width_s, len(values))
                for index, values in sorted(self._bins.items())]

    def mean(self) -> float:
        total = count = 0.0
        for values in self._bins.values():
            total += sum(values)
            count += len(values)
        return total / count if count else 0.0


def moving_average(values: list[float], window: int) -> list[float]:
    """Trailing moving average; the first ``window-1`` points use the
    shorter prefix they have."""
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    averaged = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
        averaged.append(running / min(index + 1, window))
    return averaged
