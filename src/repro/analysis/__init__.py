"""Offline analysis of SenSocial data.

The introduction motivates SenSocial with a social-science application:
capture emotions from OSN posts, the physical context as they are made,
and map both onto the social network to study emotion propagation.
This package provides that analysis layer on top of the middleware's
collected records: time-binned series, mood/graph statistics, and
GeoJSON export of sensor-map markers.
"""

from repro.analysis.timeseries import TimeBinnedSeries, moving_average
from repro.analysis.emotion import EmotionStudy, MoodSummary, pearson
from repro.analysis.geojson import markers_to_geojson
from repro.analysis.coverage import CoverageReport, UserCoverage

__all__ = [
    "CoverageReport",
    "EmotionStudy",
    "MoodSummary",
    "TimeBinnedSeries",
    "UserCoverage",
    "markers_to_geojson",
    "moving_average",
    "pearson",
]
