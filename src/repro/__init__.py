"""SenSocial reproduction.

A from-scratch Python reproduction of *SenSocial: A Middleware for
Integrating Online Social Networks and Mobile Sensing Data Streams*
(Mehrotra, Pejović, Musolesi — ACM Middleware 2014), including every
substrate the paper depends on: a discrete-event simulated network and
MQTT broker, a document store, an OSN platform with Facebook/Twitter
plug-ins, smartphones with five sensors and calibrated energy / CPU /
memory models, and the two-sided middleware itself.

Quickstart::

    from repro import SenSocialTestbed, ModalityType, Granularity

    testbed = SenSocialTestbed(seed=1)
    alice = testbed.add_user("alice", home_city="Paris")
    stream = alice.manager.get_user("alice").get_device().get_stream(
        ModalityType.ACCELEROMETER, Granularity.CLASSIFIED)
    stream.register_listener(lambda record: print(record.value))
    testbed.run(300)
"""

from repro.cluster import ClusterCoordinator, ConsistentHashRing, ShardWorker
from repro.core.common import (
    Condition,
    Filter,
    Granularity,
    ModalityType,
    ModalityValue,
    Operator,
    StreamConfig,
    StreamMode,
    StreamRecord,
)
from repro.core.mobile import (
    MobileSenSocialManager,
    MobileStream,
    PrivacyPolicy,
    PrivacyPolicyDescriptor,
    StreamState,
)
from repro.core.server import (
    Aggregator,
    MulticastQuery,
    MulticastStream,
    ServerSenSocialManager,
    ServerStream,
)
from repro.durability import DurabilityConfig, ServerDurability
from repro.obs import Observability, ObsReport, Telemetry, TraceContext, Tracer
from repro.scenarios import MobileNode, SenSocialTestbed, build_paris_scenario
from repro.simkit import World

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "ClusterCoordinator",
    "Condition",
    "ConsistentHashRing",
    "DurabilityConfig",
    "Filter",
    "Granularity",
    "MobileNode",
    "MobileSenSocialManager",
    "MobileStream",
    "ModalityType",
    "ModalityValue",
    "MulticastQuery",
    "MulticastStream",
    "Observability",
    "ObsReport",
    "Operator",
    "PrivacyPolicy",
    "PrivacyPolicyDescriptor",
    "SenSocialTestbed",
    "ServerDurability",
    "ServerSenSocialManager",
    "ServerStream",
    "ShardWorker",
    "StreamConfig",
    "StreamMode",
    "StreamRecord",
    "StreamState",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "World",
    "build_paris_scenario",
    "__version__",
]
