"""Classifier registry: built-ins plus developer-registered ones.

"SenSocial offers the possibility for developers to integrate their
own classifiers with the mobile middleware" (§4) — a registered factory
replaces the built-in for its modality.
"""

from __future__ import annotations

from typing import Callable

from repro.classify.activity import ActivityClassifier
from repro.classify.audio import AudioClassifier
from repro.classify.base import Classifier
from repro.classify.location import LocationClassifier
from repro.classify.summary import ProximityCountClassifier
from repro.device.battery import Battery
from repro.device.cpu import CpuModel
from repro.device.errors import SensorError
from repro.device.mobility import CityRegistry

#: A factory builds a classifier wired to a device's battery and CPU.
ClassifierFactory = Callable[[Battery, CpuModel], Classifier]


class ClassifierRegistry:
    """Modality → classifier factory."""

    def __init__(self, cities: CityRegistry | None = None):
        self._cities = cities if cities is not None else CityRegistry.europe()
        self._factories: dict[str, ClassifierFactory] = {
            "accelerometer": lambda battery, cpu: ActivityClassifier(battery, cpu),
            "microphone": lambda battery, cpu: AudioClassifier(battery, cpu),
            "location": lambda battery, cpu: LocationClassifier(
                self._cities, battery, cpu),
            "wifi": lambda battery, cpu: ProximityCountClassifier(
                "wifi", battery, cpu),
            "bluetooth": lambda battery, cpu: ProximityCountClassifier(
                "bluetooth", battery, cpu),
        }

    def register(self, modality: str, factory: ClassifierFactory) -> None:
        """Install a custom classifier for ``modality`` (replaces built-in)."""
        self._factories[modality] = factory

    def supports(self, modality: str) -> bool:
        return modality in self._factories

    def modalities(self) -> list[str]:
        return sorted(self._factories)

    def create(self, modality: str, battery: Battery | None = None,
               cpu: CpuModel | None = None) -> Classifier:
        factory = self._factories.get(modality)
        if factory is None:
            raise SensorError(f"no classifier registered for {modality!r}")
        return factory(battery, cpu)
