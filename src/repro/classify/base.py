"""Classifier base types."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.device import calibration
from repro.device.battery import Battery, EnergyCategory
from repro.device.cpu import CpuModel
from repro.device.sensors.base import SensorReading


@dataclass
class ClassifiedValue:
    """A high-level description inferred from one raw reading."""

    modality: str
    label: str
    timestamp: float
    details: dict[str, Any] = field(default_factory=dict)
    wire_bytes: int = 0


class Classifier(ABC):
    """Turns raw readings of one modality into labels, for energy."""

    #: Subclasses set the modality they consume.
    modality: str = ""

    def __init__(self, battery: Battery | None = None, cpu: CpuModel | None = None):
        self._battery = battery
        self._cpu = cpu
        self.invocations = 0

    def classify(self, reading: SensorReading) -> ClassifiedValue:
        """Classify one reading, charging classification energy/CPU."""
        if reading.modality != self.modality:
            raise ValueError(
                f"{type(self).__name__} consumes {self.modality!r} readings, "
                f"got {reading.modality!r}")
        if self._battery is not None:
            self._battery.drain(calibration.CLASSIFICATION_MAH[self.modality],
                                self.modality, EnergyCategory.CLASSIFICATION)
        if self._cpu is not None:
            self._cpu.pulse(calibration.CPU_CLASSIFIER_PCT)
        self.invocations += 1
        label, details = self._infer(reading)
        return ClassifiedValue(
            modality=self.modality,
            label=label,
            timestamp=reading.timestamp,
            details=details,
            wire_bytes=calibration.CLASSIFIED_PAYLOAD_BYTES[self.modality],
        )

    @abstractmethod
    def _infer(self, reading: SensorReading) -> tuple[str, dict[str, Any]]:
        """Return (label, details) for the reading."""
