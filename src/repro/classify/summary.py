"""Proximity summarisers for WiFi and Bluetooth scans.

Classified WiFi/Bluetooth streams carry an environment summary (how
many networks / devices are around) instead of the raw identifier
lists — smaller on the wire and less privacy-sensitive, which is what
the privacy policy's "classified granularity" means for these
modalities.
"""

from __future__ import annotations

from typing import Any

from repro.classify.base import Classifier
from repro.device.sensors.base import SensorReading

#: Scan-count boundary between a "quiet" and a "crowded" environment.
CROWDED_THRESHOLD = 3


class ProximityCountClassifier(Classifier):
    """Shared implementation for the two scan modalities."""

    def __init__(self, modality: str, battery=None, cpu=None):
        if modality not in ("wifi", "bluetooth"):
            raise ValueError(f"unsupported scan modality {modality!r}")
        self.modality = modality
        super().__init__(battery, cpu)

    def _infer(self, reading: SensorReading) -> tuple[str, dict[str, Any]]:
        count = len(reading.raw)
        label = "crowded" if count >= CROWDED_THRESHOLD else "quiet"
        return label, {"count": count}
