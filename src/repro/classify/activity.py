"""Activity classifier: accelerometer windows → still / walking / running.

A deliberately simple feature-threshold model, matching the paper's
"we implemented these classifiers as proofs of concept, and did not
focus on maximizing the classification accuracy" (§4).  Features: the
standard deviation of the acceleration magnitude over the window.
"""

from __future__ import annotations

import math
from typing import Any

from repro.classify.base import Classifier
from repro.device.environment import ActivityState
from repro.device.sensors.base import SensorReading

#: Magnitude-deviation decision boundaries, in m/s^2.  Sit between the
#: signal shapes the accelerometer model emits per activity.
WALKING_THRESHOLD = 0.45
RUNNING_THRESHOLD = 2.40


class ActivityClassifier(Classifier):
    """Accelerometer windows -> still / walking / running."""

    modality = "accelerometer"

    def _infer(self, reading: SensorReading) -> tuple[str, dict[str, Any]]:
        magnitudes = [math.sqrt(x * x + y * y + z * z) for x, y, z in reading.raw]
        mean = sum(magnitudes) / len(magnitudes)
        variance = sum((m - mean) ** 2 for m in magnitudes) / len(magnitudes)
        deviation = math.sqrt(variance)
        if deviation < WALKING_THRESHOLD:
            label = ActivityState.STILL.value
        elif deviation < RUNNING_THRESHOLD:
            label = ActivityState.WALKING.value
        else:
            label = ActivityState.RUNNING.value
        return label, {"magnitude_std": deviation, "magnitude_mean": mean}
