"""On-device classifiers: raw sensor windows → high-level context.

SenSocial ships proof-of-concept classifiers (activity from
accelerometer, silence from microphone) and lets developers register
their own (§4 "Sensor Data Classification"); the registry here
reproduces both.  Classifying on the phone costs classification energy
but avoids shipping raw windows — the trade-off Figure 4 quantifies.
"""

from repro.classify.base import ClassifiedValue, Classifier
from repro.classify.activity import ActivityClassifier
from repro.classify.audio import AudioClassifier
from repro.classify.location import LocationClassifier
from repro.classify.summary import ProximityCountClassifier
from repro.classify.registry import ClassifierRegistry

__all__ = [
    "ActivityClassifier",
    "AudioClassifier",
    "ClassifiedValue",
    "Classifier",
    "ClassifierRegistry",
    "LocationClassifier",
    "ProximityCountClassifier",
]
