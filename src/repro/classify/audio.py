"""Audio classifier: microphone envelopes → silent / not_silent (§4)."""

from __future__ import annotations

from typing import Any

from repro.classify.base import Classifier
from repro.device.environment import AudioState
from repro.device.sensors.base import SensorReading

#: Mean-RMS decision boundary between the silent and noisy scene models.
SILENCE_THRESHOLD = 0.10


class AudioClassifier(Classifier):
    """Microphone envelopes -> silent / not_silent."""

    modality = "microphone"

    def _infer(self, reading: SensorReading) -> tuple[str, dict[str, Any]]:
        mean_rms = sum(reading.raw) / len(reading.raw)
        if mean_rms < SILENCE_THRESHOLD:
            label = AudioState.SILENT.value
        else:
            label = AudioState.NOISY.value
        return label, {"mean_rms": mean_rms}
