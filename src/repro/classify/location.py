"""Location classifier: GPS fixes → a descriptive address (city name).

"raw GPS coordinates are classified to a descriptive address, i.e. the
name of the city that the user is in" (§4, Figure 2 walk-through).
"""

from __future__ import annotations

from typing import Any

from repro.classify.base import Classifier
from repro.device.battery import Battery
from repro.device.cpu import CpuModel
from repro.device.mobility import CityRegistry
from repro.device.sensors.base import SensorReading

UNKNOWN_PLACE = "unknown"


class LocationClassifier(Classifier):
    """GPS fixes -> the containing city's name."""

    modality = "location"

    def __init__(self, cities: CityRegistry, battery: Battery | None = None,
                 cpu: CpuModel | None = None):
        super().__init__(battery, cpu)
        self._cities = cities

    def _infer(self, reading: SensorReading) -> tuple[str, dict[str, Any]]:
        position = [reading.raw["lon"], reading.raw["lat"]]
        city = self._cities.city_of(position)
        label = city.name if city is not None else UNKNOWN_PLACE
        return label, {"lon": position[0], "lat": position[1]}
