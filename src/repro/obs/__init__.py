"""End-to-end observability: telemetry, record tracing, reports.

Three layers (see ``docs/OBSERVABILITY.md``):

* a :class:`Telemetry` registry of named counters, gauges and
  virtual-clock timers/histograms with labeled series;
* record-level tracing — a :class:`TraceContext` rides every record
  phone→server, each pipeline stage emits a timed :class:`Span`, and
  every record ends in exactly one terminal (delivered, dropped with a
  stage+reason, or in-flight at simulation end);
* exporters and surfaces — a JSONL span log, a Prometheus-style text
  dump, the per-run :class:`ObsReport`, the shared :class:`Healthcheck`
  schema, and the ``repro obs`` CLI subcommand.

Everything hangs off a per-world :class:`Observability` hub; worlds
without one pay a single ``None`` check per instrumentation site and
run bit-for-bit identically to an uninstrumented build.
"""

from repro.obs.alerts import (
    Alert,
    AlertLog,
    FIRING,
    INACTIVE,
    PENDING,
    RESOLVED,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    alerts_to_prometheus,
)
from repro.obs.control import SloControlPlane, SloControlPlaneConfig
from repro.obs.health import Healthcheck
from repro.obs.hub import Observability
from repro.obs.registry import Counter, Gauge, Histogram, Telemetry, Timer
from repro.obs.report import ObsReport
from repro.obs.slo import SloEvaluator, SloSpec
from repro.obs.trace import (
    DELIVERED,
    DELIVERED_LOCAL,
    DROPPED,
    FULL_CHAIN_STAGES,
    IN_FLIGHT,
    STAGES,
    Span,
    TraceContext,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Alert",
    "AlertLog",
    "Counter",
    "DELIVERED",
    "DELIVERED_LOCAL",
    "DROPPED",
    "FIRING",
    "FULL_CHAIN_STAGES",
    "Gauge",
    "Healthcheck",
    "Histogram",
    "INACTIVE",
    "IN_FLIGHT",
    "Observability",
    "ObsReport",
    "PENDING",
    "RESOLVED",
    "SEVERITY_PAGE",
    "SEVERITY_TICKET",
    "STAGES",
    "SloControlPlane",
    "SloControlPlaneConfig",
    "SloEvaluator",
    "SloSpec",
    "Span",
    "Telemetry",
    "Timer",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "alerts_to_prometheus",
]
