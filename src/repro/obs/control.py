"""The SLO control plane: evaluation loop + closed-loop actuation.

This is the layer that makes observability *act*.  It registers the
stock SLOs (delivery-delay, acked-loss ratio, shed ratio, journal lag,
and — on a cluster — per-shard work skew) against an
:class:`~repro.obs.slo.SloEvaluator`, ticks the evaluator on the
virtual clock, and reacts to alert transitions:

* when the **delivery-delay** SLO fires, every registered device is
  pushed a sensing-rate backoff over the existing MQTT trigger path
  (the paper's adaptive-sensing knob, server-steered the way MOSDEN
  drives its opportunistic duty cycles) — and the rate is restored
  when the alert resolves;
* when the **work-skew** SLO fires on a cluster with ``autoscale``
  enabled, the coordinator's ``maybe_autoscale()`` is invoked.

Nothing here runs unless a deployment constructs and starts the plane:
the evaluation tick is the only scheduled task, the device-side rate
subscription is opt-in (``MqttService.enable_rate_control``), and the
tracer's terminal listener is registered at construction — so a world
without a control plane is bit-identical to one on a build without
this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.obs.alerts import FIRING, RESOLVED, alerts_to_prometheus
from repro.obs.hub import Observability
from repro.obs.slo import SloEvaluator, SloSpec
from repro.obs.trace import DELIVERED, DROPPED


@dataclass(frozen=True)
class SloControlPlaneConfig:
    """Objectives, burn windows and actuation knobs."""

    #: Seconds between evaluation ticks (virtual clock).
    eval_period_s: float = 15.0
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    page_burn: float = 4.0
    ticket_burn: float = 1.0
    #: Seconds a breach must persist in pending before firing.
    for_s: float = 30.0
    #: A delivered record counts against the budget past this delay.
    delivery_delay_threshold_s: float = 30.0
    delivery_delay_objective: float = 0.05
    acked_loss_objective: float = 0.01
    shed_ratio_objective: float = 0.02
    #: Journal entries past which lag is an error (well above the
    #: checkpoint interval: a healthy journal never gets here).
    journal_lag_threshold: int = 1536
    journal_lag_objective: float = 0.10
    #: Cluster work skew (hottest shard / mean) past which the SLO
    #: burns; a crashed-but-not-rebalanced shard always burns.
    work_skew_threshold: float = 2.0
    work_skew_objective: float = 0.10
    #: Duty-cycle multiplier pushed to devices while delivery-delay
    #: fires (2.0 = sample half as often).
    backoff_factor: float = 2.0
    #: Let a firing work-skew SLO invoke the coordinator's autoscaler.
    autoscale: bool = False

    def __post_init__(self) -> None:
        if self.eval_period_s <= 0:
            raise ValueError("eval_period_s must be > 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")


#: Stock SLO names (the chaos plans reference these).
SLO_DELIVERY_DELAY = "delivery-delay-p95"
SLO_ACKED_LOSS = "acked-loss-ratio"
SLO_SHED_RATIO = "shed-ratio"
SLO_JOURNAL_LAG = "journal-lag"
SLO_WORK_SKEW = "work-skew"


class _TerminalWindow:
    """Interval accumulator fed by the tracer's terminal listener.

    Folds delivered/dropped terminals between evaluation ticks so the
    probes never rescan the trace table: O(1) per record, O(1) per
    tick.
    """

    def __init__(self, delay_threshold_s: float):
        self.delay_threshold_s = delay_threshold_s
        self.delivered = 0
        self.delayed = 0
        self.dropped = 0
        self.shed = 0

    def on_terminal(self, state) -> None:
        kind, stage, _reason, at = state.terminal
        if kind == DELIVERED:
            self.delivered += 1
            if at - state.started_at > self.delay_threshold_s:
                self.delayed += 1
        elif kind == DROPPED:
            self.dropped += 1
            if stage == "admission":
                self.shed += 1

    def take(self) -> dict[str, int]:
        doc = {"delivered": self.delivered, "delayed": self.delayed,
               "dropped": self.dropped, "shed": self.shed}
        self.delivered = self.delayed = self.dropped = self.shed = 0
        return doc


class SloControlPlane:
    """Ticks the SLO evaluator and closes the loop on its alerts."""

    def __init__(self, world, server, *,
                 config: SloControlPlaneConfig | None = None,
                 durabilities=None, obs: Observability | None = None):
        self.world = world
        self.server = server
        self.config = config if config is not None else SloControlPlaneConfig()
        self.obs = obs if obs is not None else Observability.of(world)
        if self.obs is None:
            raise ValueError("the SLO control plane needs the observability "
                             "hub installed (testbed observability=True)")
        self.evaluator = SloEvaluator()
        self.log = self.evaluator.log
        self._durabilities = durabilities
        self._window = _TerminalWindow(self.config.delivery_delay_threshold_s)
        self.obs.tracer.on_terminal(self._window.on_terminal)
        self._interval: dict[str, int] = {}
        self._task = None
        self.backoff_factor_current = 1.0
        self.backoffs_pushed = 0
        self.restores_pushed = 0
        self.rate_pushes = 0
        self.autoscales = 0
        self._register_slos()
        # Surface for ``cluster_report()`` / report builders.
        server.slo_control = self

    # -- SLO registration ---------------------------------------------

    def _spec(self, name: str, description: str, objective: float,
              **overrides) -> SloSpec:
        cfg = self.config
        return SloSpec(name=name, description=description,
                       objective=objective,
                       fast_window_s=cfg.fast_window_s,
                       slow_window_s=cfg.slow_window_s,
                       page_burn=cfg.page_burn,
                       ticket_burn=cfg.ticket_burn,
                       for_s=cfg.for_s, **overrides)

    def _register_slos(self) -> None:
        cfg = self.config
        self.evaluator.register(
            self._spec(SLO_DELIVERY_DELAY,
                       f"records delivered within "
                       f"{cfg.delivery_delay_threshold_s:.0f}s sense→server",
                       cfg.delivery_delay_objective),
            self._probe_delivery_delay)
        self.evaluator.register(
            self._spec(SLO_ACKED_LOSS,
                       "records reaching a terminal without being dropped",
                       cfg.acked_loss_objective),
            self._probe_acked_loss)
        self.evaluator.register(
            self._spec(SLO_SHED_RATIO,
                       "records surviving admission control",
                       cfg.shed_ratio_objective),
            self._probe_shed_ratio)
        if self._controllers():
            self.evaluator.register(
                self._spec(SLO_JOURNAL_LAG,
                           f"journal lag below "
                           f"{cfg.journal_lag_threshold} entries",
                           cfg.journal_lag_objective),
                self._probe_journal_lag)
        if hasattr(self.server, "slo_rollup"):
            self.evaluator.register(
                self._spec(SLO_WORK_SKEW,
                           f"per-shard work skew below "
                           f"{cfg.work_skew_threshold:.1f}x, every shard up",
                           cfg.work_skew_objective),
                self._probe_work_skew)

    def _controllers(self) -> list:
        if self._durabilities is not None:
            return [controller for controller in self._durabilities
                    if controller is not None]
        workers = getattr(self.server, "all_shard_workers", None)
        if workers is not None:
            return [worker.durability for worker in workers()
                    if worker.durability is not None]
        controller = getattr(self.server, "durability", None)
        return [controller] if controller is not None else []

    # -- probes (error fraction since the last tick) -------------------

    def _probe_delivery_delay(self) -> float:
        interval = self._interval
        delivered = interval.get("delivered", 0)
        if delivered == 0:
            return 0.0  # no deliveries this window: no delay evidence
        return interval.get("delayed", 0) / delivered

    def _probe_acked_loss(self) -> float:
        interval = self._interval
        total = interval.get("delivered", 0) + interval.get("dropped", 0)
        if total == 0:
            return 0.0
        return interval.get("dropped", 0) / total

    def _probe_shed_ratio(self) -> float:
        interval = self._interval
        total = interval.get("delivered", 0) + interval.get("dropped", 0)
        if total == 0:
            return 0.0
        return interval.get("shed", 0) / total

    def _probe_journal_lag(self) -> float:
        lags = [controller.journal.lag
                for controller in self._controllers()
                if controller.journal is not None]
        if not lags:
            return 0.0
        return 1.0 if max(lags) > self.config.journal_lag_threshold else 0.0

    def _probe_work_skew(self) -> float | None:
        rollup = self.server.slo_rollup()
        if rollup["missing"]:
            return None  # a shard is down/unreported: burning, not healthy
        return 1.0 if rollup["skew"] >= self.config.work_skew_threshold \
            else 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SloControlPlane":
        """Begin periodic evaluation on the world scheduler."""
        if self._task is None:
            self._task = self.world.scheduler.every(
                self.config.eval_period_s, self._tick,
                delay=self.config.eval_period_s)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- the loop ------------------------------------------------------

    def _tick(self) -> None:
        self._interval = self._window.take()
        transitions = self.evaluator.evaluate(self.world.now)
        telemetry = self.obs.telemetry
        telemetry.counter("slo_evaluations").inc()
        for name, new_state in transitions:
            telemetry.counter("slo_alert_transitions", slo=name,
                              to=new_state).inc()
            if name == SLO_DELIVERY_DELAY:
                if new_state == FIRING:
                    self._push_rate(self.config.backoff_factor)
                elif new_state == RESOLVED:
                    self._push_rate(1.0)
            if (name == SLO_WORK_SKEW and new_state == FIRING
                    and self.config.autoscale
                    and hasattr(self.server, "maybe_autoscale")):
                advice = self.server.maybe_autoscale()
                if advice.get("scaled"):
                    self.autoscales += 1
        telemetry.gauge("slo_backoff_factor").set(
            self.backoff_factor_current)

    # -- actuation ----------------------------------------------------

    def _push_rate(self, factor: float) -> None:
        """Push a duty-cycle multiplier to every registered device."""
        if factor == self.backoff_factor_current:
            return
        pushed = 0
        seen: set[str] = set()
        for user_id in sorted(self.server.registered_users()):
            device_id = self.server.device_of(user_id)
            if device_id is None or device_id in seen:
                continue
            seen.add(device_id)
            triggers = self._triggers_for(device_id)
            if triggers is None:
                continue
            triggers.push_rate(device_id, factor,
                               reason=SLO_DELIVERY_DELAY)
            pushed += 1
        self.backoff_factor_current = factor
        self.rate_pushes += pushed
        if factor > 1.0:
            self.backoffs_pushed += 1
        else:
            self.restores_pushed += 1
        self.obs.telemetry.counter(
            "slo_rate_pushes",
            direction="backoff" if factor > 1.0 else "restore").inc(pushed)

    def _triggers_for(self, device_id: str):
        """The trigger manager that owns ``device_id``'s MQTT path."""
        shard_for = getattr(self.server, "shard_for_device", None)
        manager = shard_for(device_id) if shard_for is not None \
            else self.server
        if getattr(manager, "crashed", False) or not manager.mqtt.connected:
            return None  # the owning path is down; retry next episode
        return manager.triggers

    # -- surfaces -----------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Full SLO/alert snapshot for ObsReport / ChaosReport."""
        return {
            "slos": self.evaluator.state(),
            "alerts": {name: alert.to_dict()
                       for name, alert in self.evaluator.alerts.items()},
            "alert_log": [dict(entry) for entry in self.log.entries],
            "accounting_problems": self.log.verify(self.evaluator.alerts),
            "actions": {
                "backoff_factor": self.backoff_factor_current,
                "backoffs_pushed": self.backoffs_pushed,
                "restores_pushed": self.restores_pushed,
                "rate_pushes": self.rate_pushes,
                "autoscales": self.autoscales,
            },
            "evaluations": self.evaluator.evaluations,
        }

    def summary(self) -> dict[str, Any]:
        """Compact rollup for ``cluster_report()``."""
        state = self.evaluator.state()
        return {
            "slos": {name: {"state": doc["state"],
                            "burn_fast": doc["burn_fast"],
                            "burn_slow": doc["burn_slow"]}
                     for name, doc in state.items()},
            "firing": sorted(name for name, alert
                             in self.evaluator.alerts.items()
                             if alert.state == FIRING),
            "backoff_factor": self.backoff_factor_current,
            "transitions": len(self.log),
        }

    def to_prometheus(self) -> str:
        """Alert states + transition totals, exposition format."""
        return alerts_to_prometheus(self.evaluator.alerts, self.log)

    def to_jsonl(self) -> str:
        """Alert transition log plus a per-SLO state line each."""
        lines = list(self.log.to_jsonl_lines())
        for name, doc in self.evaluator.state().items():
            lines.append(json.dumps({"kind": "slo_state", "slo": name, **doc},
                                    sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
