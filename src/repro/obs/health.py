"""Shared healthcheck schema for every middleware component.

The MQTT client, the mobile manager and the server manager all expose
``health()``; before ``repro.obs`` each hand-rolled its own dict.
:class:`Healthcheck` gives them one uniform envelope — ``status``,
``detail``, ``counters`` — while still flattening the counters into
the top level so existing dashboards (and tests) that index
``health()["queued"]`` keep working.
"""

from __future__ import annotations

from typing import Any

#: Canonical status values, healthiest first.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_DOWN = "down"


class Healthcheck:
    """Builder for the uniform health document."""

    SCHEMA_KEYS = ("status", "detail", "counters")

    @staticmethod
    def status_for(connected: bool, *, backlog: int = 0) -> str:
        """Map the common connected/backlog pair onto a status."""
        if not connected:
            return STATUS_DOWN
        return STATUS_DEGRADED if backlog > 0 else STATUS_OK

    @classmethod
    def build(cls, *, status: str, detail: str,
              counters: dict[str, Any], **extra) -> dict[str, Any]:
        """Assemble a health document.

        ``counters`` are exposed both under the ``counters`` key (the
        uniform schema) and flattened at the top level (legacy
        surface); ``extra`` adds identity fields like ``device_id``.
        Flattened counters never shadow the schema keys.
        """
        doc: dict[str, Any] = {
            "status": status,
            "detail": detail,
            "counters": dict(counters),
        }
        for key, value in counters.items():
            if key not in cls.SCHEMA_KEYS:
                doc[key] = value
        for key, value in extra.items():
            if key not in cls.SCHEMA_KEYS:
                doc[key] = value
        return doc

    @staticmethod
    def is_uniform(doc: dict[str, Any]) -> bool:
        """True when ``doc`` follows the shared schema."""
        return all(key in doc for key in Healthcheck.SCHEMA_KEYS)
