"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SloSpec` states an objective as an allowed *error-budget
fraction* (e.g. "at most 5% of records may exceed the delivery-delay
threshold").  A probe — any callable returning the error fraction
observed since the previous evaluation — feeds the evaluator, which
keeps a sample window per SLO on the virtual clock and derives two
burn rates:

* **fast** (short window): how hard the budget is burning *right now*
  — crossing ``page_burn`` breaches the ``page`` tier;
* **slow** (long window): a sustained burn — crossing ``ticket_burn``
  breaches the ``ticket`` tier.

A burn rate of 1.0 means the budget is being consumed exactly at the
rate the objective allows; the page threshold sits well above it so a
transient blip never wakes anyone, while the ticket threshold catches
slow leaks.  Breaches drive the per-SLO :class:`~repro.obs.alerts.Alert`
state machine; the evaluator itself never schedules anything — a
control plane (or a test) calls :meth:`evaluate` at its own cadence,
so installing the machinery without driving it costs nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.alerts import (
    Alert,
    AlertLog,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
)

#: A probe returns the error fraction (0..1) observed since the last
#: evaluation tick, or ``None`` when there was no signal this interval.
SliProbe = Callable[[], "float | None"]


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective and its burn-rate alert rules."""

    name: str
    description: str
    #: Allowed error-budget fraction (0 < objective < 1).
    objective: float
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    #: Fast-window burn rate that breaches the ``page`` tier.
    page_burn: float = 4.0
    #: Slow-window burn rate that breaches the ``ticket`` tier.
    ticket_burn: float = 1.0
    #: Seconds a breach must persist in *pending* before firing.
    for_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got "
                             f"{self.objective}")
        if not 0.0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")
        if self.page_burn <= 0 or self.ticket_burn <= 0:
            raise ValueError("burn thresholds must be > 0")


class SloEvaluator:
    """Evaluates registered SLOs over windowed error samples.

    ``evaluate(now)`` samples every probe once, folds the result into
    the per-SLO window, computes the fast/slow burn rates and steps the
    alert state machine.  A probe returning ``None`` (no signal — e.g.
    a crashed shard whose health rollup is missing) is recorded as a
    *full* error: absence of evidence of health is not health.
    """

    def __init__(self, log: AlertLog | None = None):
        self.log = log if log is not None else AlertLog()
        self._specs: dict[str, SloSpec] = {}
        self._probes: dict[str, SliProbe] = {}
        #: ``name -> deque[(at, error_fraction)]`` bounded by the slow
        #: window.
        self._samples: dict[str, deque] = {}
        self.alerts: dict[str, Alert] = {}
        self._last: dict[str, dict[str, float]] = {}
        self.evaluations = 0

    def register(self, spec: SloSpec, probe: SliProbe) -> None:
        if spec.name in self._specs:
            raise ValueError(f"SLO {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._probes[spec.name] = probe
        self._samples[spec.name] = deque()
        self.alerts[spec.name] = Alert(spec.name, self.log)

    def specs(self) -> list[SloSpec]:
        return [self._specs[name] for name in sorted(self._specs)]

    def alert(self, name: str) -> Alert:
        return self.alerts[name]

    # -- evaluation ---------------------------------------------------

    def evaluate(self, now: float) -> list[tuple[str, str]]:
        """One evaluation tick; returns ``[(slo, new_state), ...]``
        for every alert that transitioned."""
        self.evaluations += 1
        transitions: list[tuple[str, str]] = []
        for name in sorted(self._specs):
            spec = self._specs[name]
            error = self._probes[name]()
            error = 1.0 if error is None else min(1.0, max(0.0, float(error)))
            window = self._samples[name]
            window.append((now, error))
            while window and window[0][0] < now - spec.slow_window_s:
                window.popleft()
            burn_fast = self._burn(window, now, spec.fast_window_s,
                                   spec.objective)
            burn_slow = self._burn(window, now, spec.slow_window_s,
                                   spec.objective)
            severity = None
            if burn_fast >= spec.page_burn:
                severity = SEVERITY_PAGE
            elif burn_slow >= spec.ticket_burn:
                severity = SEVERITY_TICKET
            self._last[name] = {"error": error, "burn_fast": burn_fast,
                                "burn_slow": burn_slow}
            new_state = self.alerts[name].observe(now, severity,
                                                  for_s=spec.for_s)
            if new_state is not None:
                transitions.append((name, new_state))
        return transitions

    @staticmethod
    def _burn(window, now: float, window_s: float,
              objective: float) -> float:
        samples = [error for at, error in window if at >= now - window_s]
        if not samples:
            return 0.0
        return (sum(samples) / len(samples)) / objective

    # -- introspection ------------------------------------------------

    def state(self) -> dict[str, dict[str, Any]]:
        """Per-SLO snapshot: objective, burn rates, alert state."""
        doc: dict[str, dict[str, Any]] = {}
        for name in sorted(self._specs):
            spec = self._specs[name]
            alert = self.alerts[name]
            last = self._last.get(name, {})
            doc[name] = {
                "description": spec.description,
                "objective": spec.objective,
                "last_error": last.get("error"),
                "burn_fast": last.get("burn_fast", 0.0),
                "burn_slow": last.get("burn_slow", 0.0),
                "state": alert.state,
                "severity": alert.severity,
                "firings": alert.firings,
                "resolutions": alert.resolutions,
            }
        return doc
