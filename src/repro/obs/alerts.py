"""Burn-rate alerts: a firing/resolved state machine plus a tamper-
evident transition log.

One :class:`Alert` per SLO walks the classic multiwindow lifecycle —
``inactive → pending → firing → resolved`` (and back to pending when
the burn returns) — on the *virtual* clock.  Every state change is
appended to a shared :class:`AlertLog` exactly once, with the instant
and severity, so a chaos test can assert not just "the alert fired"
but "it fired once, at the right time, and resolved after the fault
cleared".  The log renders as JSONL and as Prometheus ``ALERTS``
series (label values escaped per the exposition format).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.registry import escape_label_value

#: Alert states, in lifecycle order.
INACTIVE = "inactive"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

#: Severity tiers: a fast-window burn pages a human *now*; a sustained
#: slow-window burn files a ticket.
SEVERITY_PAGE = "page"
SEVERITY_TICKET = "ticket"

_SEVERITY_RANK = {SEVERITY_TICKET: 1, SEVERITY_PAGE: 2}

#: Legal state-machine edges; anything else is a bug the log verifier
#: reports.
_LEGAL_EDGES = {
    (INACTIVE, PENDING),
    (PENDING, FIRING),
    (PENDING, INACTIVE),   # the burn cleared before the for-window ran out
    (FIRING, RESOLVED),
    (RESOLVED, PENDING),   # a fresh episode after recovery
}


class Alert:
    """The alert lifecycle for one SLO."""

    def __init__(self, name: str, log: "AlertLog"):
        self.name = name
        self.log = log
        self.state = INACTIVE
        self.severity: str | None = None
        self.pending_since: float | None = None
        self.fired_at: float | None = None
        self.resolved_at: float | None = None
        self.firings = 0
        self.resolutions = 0

    def observe(self, now: float, severity: str | None, *,
                for_s: float) -> str | None:
        """Advance the state machine one evaluation tick.

        ``severity`` is the highest breached tier this tick (``None``
        when no burn rule is breached); ``for_s`` is how long a breach
        must persist in *pending* before the alert fires.  Returns the
        new state when a transition happened, else ``None``.
        """
        if severity is not None:
            if self.state in (INACTIVE, RESOLVED):
                self.pending_since = now
                return self._transition(now, PENDING, severity)
            if self.state == PENDING:
                self.severity = self._max_severity(severity)
                if now - self.pending_since >= for_s:
                    self.fired_at = now
                    self.firings += 1
                    return self._transition(now, FIRING, self.severity)
                return None
            # Already firing: track the worst tier seen this episode.
            self.severity = self._max_severity(severity)
            return None
        if self.state == FIRING:
            self.resolved_at = now
            self.resolutions += 1
            return self._transition(now, RESOLVED, self.severity)
        if self.state == PENDING:
            # A false alarm: the burn cleared inside the for-window.
            return self._transition(now, INACTIVE, None)
        return None

    def _max_severity(self, severity: str) -> str:
        if self.severity is None:
            return severity
        return max(self.severity, severity,
                   key=lambda tier: _SEVERITY_RANK.get(tier, 0))

    def _transition(self, now: float, to_state: str,
                    severity: str | None) -> str:
        self.log.record(now, self.name, self.state, to_state, severity)
        self.state = to_state
        self.severity = severity
        return to_state

    @property
    def active(self) -> bool:
        return self.state in (PENDING, FIRING)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "severity": self.severity,
            "pending_since": self.pending_since,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "firings": self.firings,
            "resolutions": self.resolutions,
        }


class AlertLog:
    """Append-only record of every alert transition.

    The log is the accounting surface the acceptance tests pin:
    :meth:`verify` cross-checks that every entry follows a legal edge,
    that timestamps never go backwards per alert, and that firing and
    resolution counts reconcile exactly (one ``resolved`` per
    ``firing``, modulo an episode still open at read time).
    """

    def __init__(self):
        self.entries: list[dict[str, Any]] = []

    def record(self, at: float, alert: str, from_state: str,
               to_state: str, severity: str | None) -> None:
        self.entries.append({
            "at": at,
            "alert": alert,
            "from": from_state,
            "to": to_state,
            "severity": severity,
        })

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def for_alert(self, name: str) -> list[dict[str, Any]]:
        return [entry for entry in self.entries if entry["alert"] == name]

    def fired(self, name: str) -> bool:
        """True when ``name`` reached the firing state at least once."""
        return any(entry["to"] == FIRING for entry in self.for_alert(name))

    def transition_counts(self) -> dict[tuple[str, str], int]:
        """``(alert, to_state) -> count`` over the whole log."""
        counts: dict[tuple[str, str], int] = {}
        for entry in self.entries:
            key = (entry["alert"], entry["to"])
            counts[key] = counts.get(key, 0) + 1
        return counts

    def verify(self, alerts: dict[str, Alert] | None = None) -> list[str]:
        """Exactly-once transition accounting; ``[]`` when sound."""
        problems: list[str] = []
        last_state: dict[str, str] = {}
        last_at: dict[str, float] = {}
        for entry in self.entries:
            name = entry["alert"]
            expected_from = last_state.get(name, INACTIVE)
            if entry["from"] != expected_from:
                problems.append(
                    f"{name}: transition from {entry['from']!r} at "
                    f"{entry['at']:.1f}s but the previous state was "
                    f"{expected_from!r}")
            if (entry["from"], entry["to"]) not in _LEGAL_EDGES:
                problems.append(
                    f"{name}: illegal edge {entry['from']}→{entry['to']} "
                    f"at {entry['at']:.1f}s")
            if entry["at"] < last_at.get(name, float("-inf")):
                problems.append(
                    f"{name}: timestamp went backwards at {entry['at']:.1f}s")
            last_state[name] = entry["to"]
            last_at[name] = entry["at"]
        counts = self.transition_counts()
        names = {entry["alert"] for entry in self.entries}
        for name in sorted(names):
            firings = counts.get((name, FIRING), 0)
            resolutions = counts.get((name, RESOLVED), 0)
            open_episode = 1 if last_state.get(name) == FIRING else 0
            if firings != resolutions + open_episode:
                problems.append(
                    f"{name}: {firings} firings vs {resolutions} "
                    f"resolutions (+{open_episode} open)")
            if alerts is not None and name in alerts:
                alert = alerts[name]
                if (alert.firings, alert.resolutions) != (firings, resolutions):
                    problems.append(
                        f"{name}: alert counters "
                        f"({alert.firings}/{alert.resolutions}) disagree "
                        f"with the log ({firings}/{resolutions})")
        return problems

    # -- exporters ----------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        for entry in self.entries:
            yield json.dumps({"kind": "alert_transition", **entry},
                             sort_keys=True)

    def to_jsonl(self) -> str:
        lines = list(self.to_jsonl_lines())
        return "\n".join(lines) + ("\n" if lines else "")


def alerts_to_prometheus(alerts: dict[str, Alert],
                         log: AlertLog | None = None) -> str:
    """Prometheus text rendering of alert states and transition totals.

    Mirrors the ``ALERTS{alertname,alertstate,severity}`` convention:
    one sample per currently pending/firing alert, plus cumulative
    ``alert_transitions_total`` counters from the log.  Each ``# TYPE``
    line appears exactly once per family and label values go through
    the exposition-format escaper.
    """
    lines: list[str] = []
    active = [alerts[name] for name in sorted(alerts)
              if alerts[name].active]
    if active:
        lines.append("# TYPE ALERTS gauge")
        for alert in active:
            labels = (f'alertname="{escape_label_value(alert.name)}"'
                      f',alertstate="{alert.state}"'
                      f',severity="{escape_label_value(alert.severity or "")}"')
            lines.append("ALERTS{" + labels + "} 1")
    if log is not None and len(log):
        lines.append("# TYPE alert_transitions_total counter")
        for (name, to_state), count in sorted(log.transition_counts().items()):
            labels = (f'alertname="{escape_label_value(name)}"'
                      f',to="{escape_label_value(to_state)}"')
            lines.append(f"alert_transitions_total{{{labels}}} {count}")
    return "\n".join(lines) + ("\n" if lines else "")
