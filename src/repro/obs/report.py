"""Per-run observability reports.

:class:`ObsReport` condenses a run's tracer and telemetry state into
the quantities the paper's evaluation cares about: per-stage latency
percentiles, a drop taxonomy (every non-delivered record attributed to
a stage and reason), terminal accounting, queue depths, and journey
reconstruction completeness.  It renders as text for the ``repro obs``
CLI and as a dict for embedding into :class:`repro.faults.ChaosReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import (
    DELIVERED,
    DELIVERED_LOCAL,
    DROPPED,
    IN_FLIGHT,
    STAGES,
)

_STAGE_ORDER = {stage: index for index, stage in enumerate(STAGES)}


def _percentile(ordered: list[float], q: float) -> float:
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class ObsReport:
    """One run's telemetry/tracing summary."""

    generated_at: float
    terminals: dict[str, int] = field(default_factory=dict)
    #: ``stage -> {count, p50, p95, p99, max}`` span durations.
    stage_latency: dict[str, dict[str, float]] = field(default_factory=dict)
    #: ``[{stage, reason, count}, ...]`` — the drop taxonomy.
    drops: list[dict[str, Any]] = field(default_factory=list)
    #: Named queue depths at report time (outboxes, broker queues).
    queue_depths: dict[str, int] = field(default_factory=dict)
    #: Per-endpoint network drop details (count + last reason/time).
    network_drops: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Fraction of server-delivered traces whose full phone→server
    #: chain (sense→outbox→transport→ingest) was reconstructed.
    completeness: float | None = None
    traces_started: int = 0
    traces_evicted: int = 0
    terminal_conflicts: int = 0
    counters: dict[str, Any] = field(default_factory=dict)
    #: SLO/alert snapshot (``SloControlPlane.report()``) when a control
    #: plane is deployed; ``None`` otherwise.
    slo: dict[str, Any] | None = None

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, obs, *, queue_depths: dict[str, int] | None = None,
              network=None, slo=None) -> "ObsReport":
        """Snapshot ``obs`` (an :class:`Observability` hub) now."""
        tracer = obs.tracer
        stage_latency: dict[str, dict[str, float]] = {}
        for stage, durations in tracer.stage_durations().items():
            ordered = sorted(durations)
            stage_latency[stage] = {
                "count": len(ordered),
                "p50": _percentile(ordered, 0.50),
                "p95": _percentile(ordered, 0.95),
                "p99": _percentile(ordered, 0.99),
                "max": ordered[-1],
            }
        drops = [{"stage": stage, "reason": reason, "count": count}
                 for (stage, reason), count
                 in sorted(tracer.drop_taxonomy().items())]
        delivered = [state for state in tracer.traces()
                     if state.terminal_kind() == DELIVERED]
        completeness = None
        if delivered:
            complete = sum(1 for state in delivered
                           if tracer.chain_complete(state))
            completeness = complete / len(delivered)
        return cls(
            generated_at=obs.world.now,
            terminals=tracer.terminal_counts(),
            stage_latency=stage_latency,
            drops=drops,
            queue_depths=dict(queue_depths or {}),
            network_drops=(network.drop_details()
                           if network is not None else {}),
            completeness=completeness,
            traces_started=tracer.started,
            traces_evicted=tracer.evicted,
            terminal_conflicts=tracer.terminal_conflicts,
            counters=obs.telemetry.snapshot(),
            slo=(slo.report() if hasattr(slo, "report") else slo),
        )

    # -- derived ------------------------------------------------------

    @property
    def records_delivered(self) -> int:
        return self.terminals.get(DELIVERED, 0)

    @property
    def records_dropped(self) -> int:
        return self.terminals.get(DROPPED, 0)

    @property
    def records_in_flight(self) -> int:
        return self.terminals.get(IN_FLIGHT, 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "generated_at": self.generated_at,
            "terminals": dict(self.terminals),
            "stage_latency": {stage: dict(summary) for stage, summary
                              in self.stage_latency.items()},
            "drops": [dict(drop) for drop in self.drops],
            "queue_depths": dict(self.queue_depths),
            "network_drops": {address: dict(details) for address, details
                              in self.network_drops.items()},
            "completeness": self.completeness,
            "traces_started": self.traces_started,
            "traces_evicted": self.traces_evicted,
            "terminal_conflicts": self.terminal_conflicts,
            "slo": self.slo,
        }

    def format(self) -> str:
        lines = [f"observability report @ {self.generated_at:.1f}s",
                 "",
                 "record terminals:"]
        for kind in (DELIVERED, DELIVERED_LOCAL, DROPPED, IN_FLIGHT):
            lines.append(f"  {kind:16s} {self.terminals.get(kind, 0)}")
        if self.completeness is not None:
            lines.append(f"  chain completeness   {self.completeness:.1%}")
        lines += ["", "stage latencies (s):",
                  f"  {'stage':16s} {'count':>7s} {'p50':>9s} "
                  f"{'p95':>9s} {'p99':>9s} {'max':>9s}"]
        ordered = sorted(self.stage_latency,
                         key=lambda stage: (_STAGE_ORDER.get(stage, 99), stage))
        for stage in ordered:
            summary = self.stage_latency[stage]
            lines.append(
                f"  {stage:16s} {summary['count']:7d} {summary['p50']:9.3f} "
                f"{summary['p95']:9.3f} {summary['p99']:9.3f} "
                f"{summary['max']:9.3f}")
        lines += ["", "drop taxonomy:"]
        if self.drops:
            for drop in self.drops:
                lines.append(f"  {drop['stage']:16s} "
                             f"{drop['reason']:28s} {drop['count']}")
        else:
            lines.append("  (no record drops)")
        if self.network_drops:
            lines += ["", "network drops by endpoint:"]
            for address in sorted(self.network_drops):
                details = self.network_drops[address]
                lines.append(
                    f"  {address:24s} count={details['count']} "
                    f"last={details['last_reason']} "
                    f"at={details['last_at']:.1f}s")
        if self.queue_depths:
            lines += ["", "queue depths:"]
            for name in sorted(self.queue_depths):
                lines.append(f"  {name:24s} {self.queue_depths[name]}")
        if self.slo is not None:
            lines += ["", "slo burn rates:"]
            for name in sorted(self.slo.get("slos", {})):
                doc = self.slo["slos"][name]
                lines.append(
                    f"  {name:22s} {doc['state']:9s} "
                    f"fast={doc['burn_fast']:6.2f} "
                    f"slow={doc['burn_slow']:6.2f}")
            log = self.slo.get("alert_log", [])
            if log:
                lines += ["", "alert transitions:"]
                for entry in log:
                    lines.append(
                        f"  [{entry['at']:8.1f}s] {entry['alert']:22s} "
                        f"{entry['from']} -> {entry['to']}"
                        f" ({entry['severity'] or '-'})")
            actions = self.slo.get("actions", {})
            if actions:
                lines.append(
                    f"  actions: backoff x{actions.get('backoff_factor', 1.0)}"
                    f", {actions.get('backoffs_pushed', 0)} backoffs, "
                    f"{actions.get('restores_pushed', 0)} restores, "
                    f"{actions.get('autoscales', 0)} autoscales")
        lines += ["",
                  f"traces: {self.traces_started} started, "
                  f"{self.traces_evicted} evicted, "
                  f"{self.terminal_conflicts} terminal conflicts"]
        return "\n".join(lines)
