"""Record-level tracing: trace contexts, spans, and terminal states.

A :class:`TraceContext` (trace id + span id + baggage) is attached to
every :class:`~repro.core.common.records.StreamRecord` at the sensor
and propagated — through filter evaluation, classification, the
outbox, transport, and server ingest — as the record travels
phone→server.  Each stage emits a timed :class:`Span` off the virtual
clock, so a full journey is reconstructable from the span log, and
every record ends in exactly one *terminal*: delivered, dropped (with
a stage and reason), or in-flight when the simulation stops.

Trace and span ids come from a dedicated deterministic RNG stream
(``obs-trace``): runs with tracing disabled draw nothing from it and
are bit-identical to runs on a world without the tracer.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.simkit.world import World

#: Stage names in phone→server journey order; spans may use others
#: (the taxonomy is open) but reports order known stages this way.
STAGES = (
    "sense",
    "classify",
    "privacy",
    "filter",
    "deliver_local",
    "outbox",
    "transport",
    "admission",
    "journal_append",
    "ingest",
    "replay",
    "server_filter",
    "stream_delivery",
)

#: The stages a delivered record's chain must contain for the journey
#: to count as fully reconstructed.
FULL_CHAIN_STAGES = frozenset({"sense", "outbox", "transport", "ingest"})

#: Terminal kinds.
DELIVERED = "delivered"
DELIVERED_LOCAL = "delivered_local"
DROPPED = "dropped"
IN_FLIGHT = "in_flight"


@dataclass(frozen=True)
class TraceContext:
    """Propagated identity of one traced record."""

    trace_id: str
    span_id: str
    baggage: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"trace_id": self.trace_id,
                               "span_id": self.span_id}
        if self.baggage:
            doc["baggage"] = dict(self.baggage)
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TraceContext":
        return cls(trace_id=doc["trace_id"], span_id=doc["span_id"],
                   baggage=tuple(sorted(doc.get("baggage", {}).items())))

    def get_baggage(self, key: str, default: str | None = None) -> str | None:
        for item_key, value in self.baggage:
            if item_key == key:
                return value
        return default


@dataclass
class Span:
    """One timed stage of a record's journey."""

    trace_id: str
    stage: str
    start: float
    end: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "kind": "span",
            "trace_id": self.trace_id,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


@dataclass
class TraceEvent:
    """A point-in-time annotation on a trace (e.g. a transmit attempt)."""

    trace_id: str
    name: str
    at: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": "event", "trace_id": self.trace_id,
                               "name": self.name, "at": self.at}
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


@dataclass
class TraceState:
    """Everything recorded about one trace."""

    trace_id: str
    started_at: float
    baggage: tuple[tuple[str, str], ...] = ()
    spans: list[Span] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    #: ``None`` while in flight; otherwise ``(kind, stage, reason, at)``.
    terminal: tuple[str, str | None, str | None, float] | None = None

    def stages(self) -> set[str]:
        return {span.stage for span in self.spans}

    def terminal_kind(self) -> str:
        return self.terminal[0] if self.terminal is not None else IN_FLIGHT


class Tracer:
    """Collects spans, events and terminals for every traced record.

    Bounded: past ``max_traces`` the oldest *terminated* traces are
    evicted (and counted) so long simulations stay flat in memory
    while in-flight records keep their state.
    """

    #: Name of the dedicated RNG stream ids are drawn from.
    RNG_STREAM = "obs-trace"

    def __init__(self, world: World, max_traces: int = 200_000):
        self._world = world
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, TraceState]" = OrderedDict()
        self.started = 0
        self.evicted = 0
        #: Terminal marks attempted on an already-terminated trace —
        #: zero in a correct pipeline; surfaced by the invariant tests.
        self.terminal_conflicts = 0
        #: Called with the :class:`TraceState` the instant a trace
        #: terminates.  Empty unless an SLO evaluator (or similar
        #: consumer) registers — iterating an empty list is the only
        #: cost the default path pays.
        self._terminal_listeners: list = []

    # -- trace lifecycle ----------------------------------------------

    def _new_id(self, nbits: int = 64) -> str:
        return self._world.randoms.token(self.RNG_STREAM, nbits)

    def start_trace(self, **baggage) -> TraceContext:
        """Open a trace; baggage values are stringified and carried."""
        trace_id = self._new_id(64)
        items = tuple(sorted((key, str(value))
                             for key, value in baggage.items()))
        context = TraceContext(trace_id=trace_id, span_id=self._new_id(32),
                               baggage=items)
        self._traces[trace_id] = TraceState(
            trace_id=trace_id, started_at=self._world.now, baggage=items)
        self.started += 1
        self._evict_terminated()
        return context

    def _evict_terminated(self) -> None:
        while len(self._traces) > self.max_traces:
            victim = next((trace_id for trace_id, state in self._traces.items()
                           if state.terminal is not None), None)
            if victim is None:
                return  # everything in flight; keep it all
            del self._traces[victim]
            self.evicted += 1

    # -- recording ----------------------------------------------------

    def _state(self, context: TraceContext | None) -> TraceState | None:
        if context is None:
            return None
        return self._traces.get(context.trace_id)

    def span(self, context: TraceContext | None, stage: str, *,
             start: float | None = None, end: float | None = None,
             status: str = "ok", **attrs) -> None:
        """Record a completed span; times default to the virtual now."""
        state = self._state(context)
        if state is None:
            return
        now = self._world.now
        state.spans.append(Span(
            trace_id=state.trace_id, stage=stage,
            start=now if start is None else start,
            end=now if end is None else end,
            status=status, attrs=attrs))

    def event(self, context: TraceContext | None, name: str, **attrs) -> None:
        state = self._state(context)
        if state is None:
            return
        state.events.append(TraceEvent(
            trace_id=state.trace_id, name=name, at=self._world.now,
            attrs=attrs))

    def mark_delivered(self, context: TraceContext | None,
                       scope: str = "server") -> None:
        """Terminal: the record reached its destination listeners."""
        state = self._state(context)
        if state is None:
            return
        if state.terminal is not None:
            self.terminal_conflicts += 1
            return
        kind = DELIVERED if scope == "server" else DELIVERED_LOCAL
        state.terminal = (kind, None, None, self._world.now)
        for listener in self._terminal_listeners:
            listener(state)

    def mark_dropped(self, context: TraceContext | None, stage: str,
                     reason: str) -> None:
        """Terminal: the record died at ``stage`` because ``reason``."""
        state = self._state(context)
        if state is None:
            return
        if state.terminal is not None:
            self.terminal_conflicts += 1
            return
        now = self._world.now
        state.terminal = (DROPPED, stage, reason, now)
        state.spans.append(Span(trace_id=state.trace_id, stage=stage,
                                start=now, end=now, status="drop",
                                attrs={"reason": reason}))
        for listener in self._terminal_listeners:
            listener(state)

    def on_terminal(self, listener) -> None:
        """Register ``listener(state)`` to fire on every terminal mark.

        The SLO evaluator uses this to fold delivery delays and drop
        ratios incrementally instead of rescanning the trace table each
        evaluation window.
        """
        self._terminal_listeners.append(listener)

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self._traces)

    def traces(self) -> Iterator[TraceState]:
        yield from self._traces.values()

    def get(self, trace_id: str) -> TraceState | None:
        return self._traces.get(trace_id)

    def terminal_counts(self) -> dict[str, int]:
        counts = {DELIVERED: 0, DELIVERED_LOCAL: 0, DROPPED: 0, IN_FLIGHT: 0}
        for state in self._traces.values():
            counts[state.terminal_kind()] += 1
        return counts

    def drop_taxonomy(self) -> dict[tuple[str, str], int]:
        """``(stage, reason) -> count`` over every dropped trace."""
        taxonomy: dict[tuple[str, str], int] = {}
        for state in self._traces.values():
            if state.terminal is not None and state.terminal[0] == DROPPED:
                key = (state.terminal[1] or "?", state.terminal[2] or "?")
                taxonomy[key] = taxonomy.get(key, 0) + 1
        return taxonomy

    def stage_durations(self) -> dict[str, list[float]]:
        durations: dict[str, list[float]] = {}
        for state in self._traces.values():
            for span in state.spans:
                if span.status == "ok":
                    durations.setdefault(span.stage, []).append(span.duration)
        return durations

    def chain_complete(self, state: TraceState) -> bool:
        """True when a delivered trace contains the full journey."""
        return FULL_CHAIN_STAGES <= state.stages()

    # -- exporters ----------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        """One JSON document per span/event/terminal, journey-ordered
        within each trace."""
        for state in self._traces.values():
            header: dict[str, Any] = {
                "kind": "trace", "trace_id": state.trace_id,
                "started_at": state.started_at,
                "baggage": dict(state.baggage),
                "terminal": None,
            }
            if state.terminal is not None:
                kind, stage, reason, at = state.terminal
                header["terminal"] = {"kind": kind, "stage": stage,
                                      "reason": reason, "at": at}
            yield json.dumps(header, sort_keys=True)
            for span in state.spans:
                yield json.dumps(span.to_dict(), sort_keys=True)
            for event in state.events:
                yield json.dumps(event.to_dict(), sort_keys=True)

    def to_jsonl(self) -> str:
        lines = list(self.to_jsonl_lines())
        return "\n".join(lines) + ("\n" if lines else "")
