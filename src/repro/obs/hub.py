"""The observability hub: one telemetry registry + tracer per world.

The hub is attached to the world's component registry under a
well-known name, so any middleware layer can find it without threading
a parameter through every constructor — and, crucially, can find
*nothing* when observability is off: every instrumentation site caches
``Observability.of(world)`` (``None`` when not installed) and guards
with a single ``is not None`` check, which keeps the disabled path
zero-overhead-ish and bit-for-bit identical to a build without the
instrumentation.
"""

from __future__ import annotations

from repro.obs.registry import Telemetry
from repro.obs.report import ObsReport
from repro.obs.trace import Tracer
from repro.simkit.world import World


class Observability:
    """Per-world telemetry registry + record tracer."""

    #: Name under which the hub registers in the world's components.
    COMPONENT_NAME = "obs"

    def __init__(self, world: World, *, max_traces: int = 200_000):
        self.world = world
        self.telemetry = Telemetry()
        self.tracer = Tracer(world, max_traces=max_traces)

    # -- discovery ----------------------------------------------------

    @classmethod
    def install(cls, world: World, **kwargs) -> "Observability":
        """Attach a hub to ``world`` (idempotent)."""
        existing = cls.of(world)
        if existing is not None:
            return existing
        return world.attach(cls.COMPONENT_NAME, cls(world, **kwargs))

    @classmethod
    def of(cls, world: World) -> "Observability | None":
        """The world's hub, or ``None`` when observability is off."""
        return world.component_or_none(cls.COMPONENT_NAME)

    # -- reporting ----------------------------------------------------

    def report(self, *, queue_depths: dict[str, int] | None = None,
               network=None, slo=None) -> ObsReport:
        """Snapshot the run into an :class:`ObsReport`.

        ``slo`` may be an :class:`~repro.obs.control.SloControlPlane`
        (its ``report()`` is embedded) or a pre-built dict.
        """
        return ObsReport.build(self, queue_depths=queue_depths,
                               network=network, slo=slo)
