"""The telemetry registry: named counters, gauges and histograms.

Every metric is identified by a name plus a sorted label set, so one
logical series ("records_transmitted") fans out into labeled children
(per device, per modality, per topic) without the call sites managing
dictionaries themselves.  All metrics are plain Python objects with
O(1) update paths — cheap enough to leave enabled — and time always
comes from the caller (the virtual clock), never the wall clock, so
instrumented runs stay deterministic.
"""

from __future__ import annotations

import re
from typing import Iterator

#: Label sets are canonicalised to sorted tuples so the same labels in
#: any order address the same series.
LabelSet = tuple[tuple[str, str], ...]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles reported by histogram summaries and the Prometheus dump.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _prom_name(name: str) -> str:
    return _PROM_NAME_RE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside a quoted label value; anything else passes
    through verbatim.  Order matters: the backslash must be doubled
    first or the escapes it introduces would themselves be escaped.
    """
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    body = ",".join(f'{_prom_name(key)}="{escape_label_value(value)}"'
                    for key, value in items)
    return "{" + body + "}"


class Metric:
    """Base class: a named, labeled series in the registry."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down (queue depths, connections).

    The high-water mark (``peak``) is tracked alongside the current
    value: sampled gauges like ``cluster_work_skew`` are only as
    current as their last update, and capacity decisions (did a shard
    ever run hot?) need the worst value seen, not the final one.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def read_and_reset_peak(self) -> float:
        """Return the high-water mark and reset it to the current value.

        Periodic samplers (the SLO evaluator, capacity dashboards) call
        this once per window so each window sees its *own* worst value
        instead of a peak that only ever grows for the lifetime of the
        run.  The peak can never fall below the current value, so the
        reset floor is ``value``, not zero.
        """
        peak = self.peak
        self.peak = self.value
        return peak


class Histogram(Metric):
    """A distribution of observed values with quantile summaries.

    Observations are kept (bounded by ``max_samples`` with
    reservoir-free head truncation: min/max/count/sum stay exact, the
    quantiles degrade gracefully) so per-run reports can compute real
    percentiles rather than bucket approximations.
    """

    kind = "histogram"

    #: Cap on retained samples; beyond it the oldest half is folded
    #: away (count/sum/min/max remain exact).
    max_samples = 65536

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._values: list[float] = []
        self.truncated = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._values.append(value)
        if len(self._values) > self.max_samples:
            drop = len(self._values) // 2
            del self._values[:drop]
            self.truncated += drop

    def percentile(self, q: float) -> float | None:
        """The ``q``-quantile (0..1) of the retained samples."""
        if not self._values:
            return None
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict[str, float | int | None]:
        doc: dict[str, float | int | None] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        for q in SUMMARY_QUANTILES:
            doc[f"p{int(q * 100)}"] = self.percentile(q)
        return doc


class Timer(Histogram):
    """A histogram of durations measured on the virtual clock.

    Usage: ``start = timer.start(world.now)`` … later …
    ``timer.stop(start, world.now)``.  The timer never reads a clock
    itself; it only subtracts the instants its caller hands it, which
    keeps instrumentation free of wall-clock nondeterminism.
    """

    kind = "timer"

    @staticmethod
    def start(now: float) -> float:
        return now

    def stop(self, started_at: float, now: float) -> float:
        elapsed = now - started_at
        self.observe(elapsed)
        return elapsed


class Telemetry:
    """The registry: hands out metrics by (kind, name, labels)."""

    _KINDS = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram, "timer": Timer}

    def __init__(self):
        self._metrics: dict[tuple[str, str, LabelSet], Metric] = {}

    def _get(self, kind: str, name: str, labels: dict[str, object]) -> Metric:
        key = (kind, name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._KINDS[kind](name, key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)  # type: ignore[return-value]

    def timer(self, name: str, **labels) -> Timer:
        return self._get("timer", name, labels)  # type: ignore[return-value]

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> Iterator[Metric]:
        """All registered metrics, in deterministic (sorted) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def series(self, name: str) -> list[Metric]:
        """Every labeled child of the logical series ``name``."""
        return [metric for metric in self.metrics() if metric.name == name]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge series across all label sets."""
        return sum(metric.value for metric in self.series(name)
                   if isinstance(metric, (Counter, Gauge)))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A plain-dict dump, keyed ``name{label="v",...}``."""
        doc: dict[str, dict[str, object]] = {}
        for metric in self.metrics():
            key = metric.name + _prom_labels(metric.labels)
            if isinstance(metric, Histogram):
                doc[key] = metric.summary()
            elif isinstance(metric, Gauge):
                doc[key] = {"value": metric.value, "peak": metric.peak}
            else:
                doc[key] = {"value": metric.value}
        return doc

    # -- exporters ----------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text-format dump of every registered metric."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for metric in self.metrics():
            name = _prom_name(metric.name)
            if isinstance(metric, Histogram):
                if name not in seen_types:
                    lines.append(f"# TYPE {name} summary")
                    seen_types.add(name)
                for q in SUMMARY_QUANTILES:
                    value = metric.percentile(q)
                    if value is None:
                        continue
                    labels = _prom_labels(metric.labels,
                                          (("quantile", str(q)),))
                    lines.append(f"{name}{labels} {value:.6g}")
                labels = _prom_labels(metric.labels)
                lines.append(f"{name}_count{labels} {metric.count}")
                lines.append(f"{name}_sum{labels} {metric.sum:.6g}")
            else:
                if name not in seen_types:
                    lines.append(f"# TYPE {name} {metric.kind}")
                    seen_types.add(name)
                labels = _prom_labels(metric.labels)
                value = metric.value
                rendered = str(value) if isinstance(value, int) else f"{value:.6g}"
                lines.append(f"{name}{labels} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")
