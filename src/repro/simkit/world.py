"""The :class:`World`: the root container of a simulation.

A world owns the scheduler, the random streams, and a registry of named
components.  Substrates (network, broker, OSN service, devices) attach
themselves to a world so the middleware can find them without global
state — mirroring how the real SenSocial wires its singletons, but kept
testable because each test builds its own world.
"""

from __future__ import annotations

import random
from typing import Any

from repro.simkit.errors import SimulationError
from repro.simkit.randomness import RandomStreams
from repro.simkit.scheduler import EventQueue, Scheduler


def build_event_queue(scheduler: str | EventQueue | None) -> EventQueue | None:
    """Resolve a scheduler selector to an :class:`EventQueue`."""
    if scheduler is None or scheduler == "heap":
        return None  # Scheduler builds its default HeapEventQueue
    if isinstance(scheduler, EventQueue):
        return scheduler
    if scheduler == "wheel":
        from repro.simkit.wheel import CalendarEventQueue, oracle_gate
        oracle_gate()
        return CalendarEventQueue()
    raise SimulationError(
        f"unknown scheduler {scheduler!r}; expected 'heap', 'wheel' or "
        f"an EventQueue instance")


class World:
    """A self-contained simulation universe."""

    def __init__(self, seed: int = 0, start_time: float = 0.0,
                 scheduler: str | EventQueue = "heap"):
        #: ``scheduler`` selects the event-queue backing the clock:
        #: ``"heap"`` (the default binary heap), ``"wheel"`` (the
        #: calendar-queue event wheel, gated by the heap-equivalence
        #: oracle on first use per process), or a pre-built
        #: :class:`repro.simkit.scheduler.EventQueue` instance.  Both
        #: built-ins fire the identical ``(time, seq)`` total order,
        #: so the choice is a performance knob, never a semantic one.
        self.scheduler = Scheduler(start_time, queue=build_event_queue(scheduler))
        self.randoms = RandomStreams(seed)
        self._components: dict[str, Any] = {}
        self._sequences: dict[str, int] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.scheduler.now

    def rng(self, name: str) -> random.Random:
        """Named deterministic RNG stream (see :class:`RandomStreams`)."""
        return self.randoms.stream(name)

    def sequence(self, name: str) -> int:
        """Next value (1, 2, 3, …) of a named per-world counter.

        Entity-naming counters (device ids, OSN action ids) live here
        rather than in module globals so that two simulations run
        back-to-back in one process assign identical names — a module
        global would keep counting across worlds.
        """
        value = self._sequences.get(name, 0) + 1
        self._sequences[name] = value
        return value

    def attach(self, name: str, component: Any) -> Any:
        """Register a component under a unique name and return it."""
        if name in self._components:
            raise SimulationError(f"component {name!r} already attached")
        self._components[name] = component
        return component

    def detach(self, name: str) -> Any:
        """Remove and return a registered component."""
        try:
            return self._components.pop(name)
        except KeyError:
            raise SimulationError(f"no component named {name!r}") from None

    def component(self, name: str) -> Any:
        """Look up a component registered with :meth:`attach`."""
        try:
            return self._components[name]
        except KeyError:
            raise SimulationError(f"no component named {name!r}") from None

    def component_or_none(self, name: str) -> Any | None:
        """Like :meth:`component`, but ``None`` when absent — the cheap
        lookup instrumentation uses to find the observability hub."""
        return self._components.get(name)

    def has_component(self, name: str) -> bool:
        return name in self._components

    def components(self) -> dict[str, Any]:
        """A snapshot of the component registry."""
        return dict(self._components)

    def run_for(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.scheduler.run_for(duration)

    def run_until(self, time: float) -> None:
        """Advance simulated time to the absolute instant ``time``."""
        self.scheduler.run_until(time)
