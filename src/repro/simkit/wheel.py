"""Calendar-queue event wheel: the population-scale scheduler queue.

A binary heap pays O(log n) per event over *every* pending event — at
100k devices with one periodic sense task each, that is O(log 100000)
per firing, and the constant keeps growing with the population.  The
calendar queue partitions time into fixed-width buckets (``bucket id =
floor(time / width)``); pending events live in a small per-bucket heap
and the set of non-empty buckets is tracked in a lazy id-heap.  Every
operation then costs O(log bucket occupancy + log non-empty buckets),
and with a width matched to the event density the bucket occupancy
stays a small constant no matter how large the population grows.

Because buckets partition the time axis, the minimum ``(time, seq)``
of the lowest non-empty bucket is the *global* minimum — the wheel
pops the exact total order the heap pops, so firing order, clock reads
and cancellation semantics are bit-identical.  That claim is not taken
on faith: :func:`equivalence_check` drives one randomized event
program (nested schedules, cancellations, periodic churn, ties) through
both queues and compares the complete firing log, and
:func:`oracle_gate` caches a self-check that
:class:`repro.simkit.world.World` runs before honouring
``scheduler="wheel"``.
"""

from __future__ import annotations

import heapq
import random

from repro.simkit.errors import SimulationError
from repro.simkit.scheduler import EventHandle, EventQueue, HeapEventQueue, Scheduler


class CalendarEventQueue(EventQueue):
    """Fixed-width time buckets, each a small heap; a lazy id-heap
    finds the lowest non-empty bucket.

    The width self-tunes downward: when one bucket's occupancy crosses
    ``MAX_BUCKET`` the whole calendar is rebuilt at half the width
    (deterministic — triggered by the same operation sequence every
    run).  Same-instant pile-ups (a flash crowd scheduling thousands of
    events at one time) are exempt: narrower buckets cannot split a
    single instant, so the bucket degrades gracefully into one heap.
    """

    __slots__ = ("_buckets", "_ids", "_width", "_live", "_cancelled",
                 "_size", "compactions", "resizes")

    #: Rebuild threshold: a bucket this full (with distinct times) means
    #: the width is too coarse for the event density.
    MAX_BUCKET = 512
    #: Never narrow below this — sub-microsecond buckets would make the
    #: id-heap the new bottleneck.
    MIN_WIDTH = 1e-6

    def __init__(self, bucket_width: float = 1.0):
        if bucket_width <= 0:
            raise SimulationError(
                f"bucket width must be > 0, got {bucket_width}")
        self._buckets: dict[int, list[EventHandle]] = {}
        self._ids: list[int] = []
        self._width = float(bucket_width)
        self._live = 0
        self._cancelled = 0
        self._size = 0
        self.compactions = 0
        self.resizes = 0

    @property
    def bucket_width(self) -> float:
        return self._width

    def occupied_buckets(self) -> int:
        return len(self._buckets)

    def push(self, handle: EventHandle) -> None:
        handle.queue = self
        bucket = self._place(handle)
        self._live += 1
        self._size += 1
        if len(bucket) > self.MAX_BUCKET and self._width > self.MIN_WIDTH:
            # Only a spread of *distinct* times benefits from narrower
            # buckets; a same-instant pile-up stays one heap.  If the
            # halved width still overflows, the next push to the hot
            # bucket halves again — convergence without recursion.
            if bucket[0].time != max(entry.time for entry in bucket):
                self._rebuild(self._width / 2.0)

    def pop(self) -> EventHandle | None:
        handle = self._find_min(remove=True)
        if handle is not None:
            handle.queue = None
            self._live -= 1
            self._size -= 1
        return handle

    def peek(self) -> EventHandle | None:
        return self._find_min(remove=False)

    def live_count(self) -> int:
        return self._live

    def note_cancel(self) -> None:
        self._cancelled += 1
        self._live -= 1
        if (self._cancelled * 2 > self._size
                and self._size >= self.COMPACT_MIN):
            self._compact()

    # -- internals -----------------------------------------------------

    def _key(self, time: float) -> int:
        return int(time / self._width)

    def _place(self, handle: EventHandle) -> list[EventHandle]:
        """Raw insert into the bucket for ``handle.time``; returns it."""
        key = self._key(handle.time)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = []
            heapq.heappush(self._ids, key)
        heapq.heappush(bucket, handle)
        return bucket

    def _find_min(self, *, remove: bool) -> EventHandle | None:
        """The live minimum — from the lowest non-empty bucket, dropping
        cancelled entries and stale/duplicate bucket ids on the way."""
        while self._ids:
            key = self._ids[0]
            bucket = self._buckets.get(key)
            if bucket is None:
                heapq.heappop(self._ids)  # stale id: bucket emptied
                continue
            while bucket and bucket[0].cancelled:
                heapq.heappop(bucket).queue = None
                self._cancelled -= 1
                self._size -= 1
            if not bucket:
                del self._buckets[key]
                heapq.heappop(self._ids)
                continue
            if remove:
                handle = heapq.heappop(bucket)
                if not bucket:
                    del self._buckets[key]
                    heapq.heappop(self._ids)
                return handle
            return bucket[0]
        return None

    def _pending(self) -> list[EventHandle]:
        return [handle for bucket in self._buckets.values()
                for handle in bucket if not handle.cancelled]

    def _reload(self, pending: list[EventHandle]) -> None:
        self._buckets = {}
        self._ids = []
        self._cancelled = 0
        self._size = len(pending)
        for handle in pending:
            self._place(handle)

    def _rebuild(self, width: float) -> None:
        """Re-bucket every live event at a new width (cancelled entries
        are dropped on the way — a rebuild is also a compaction)."""
        pending = self._pending()
        self._width = max(self.MIN_WIDTH, width)
        self._reload(pending)
        self.resizes += 1

    def _compact(self) -> None:
        self._reload(self._pending())
        self.compactions += 1


# -- equivalence oracle ------------------------------------------------

def _drive_program(queue: EventQueue, seed: int, ops: int) -> list:
    """One randomized event program, logged as (clock, label) pairs.

    The program exercises everything the scheduler contract promises:
    nested scheduling from inside callbacks, same-instant ties (fire in
    scheduling order), cancellation (including cancel-after-pop no-ops
    and periodic churn that leaks cancelled entries), and interleaved
    ``run_until`` clock reads.
    """
    scheduler = Scheduler(queue=queue)
    rng = random.Random(seed)
    log: list = []
    handles: list[EventHandle] = []
    periodics = []

    def fire(label: int, depth: int) -> None:
        log.append((scheduler.now, label))
        if depth > 0 and rng.random() < 0.6:
            # Nested schedules, sometimes at the exact current instant
            # (a zero delay) to force (time, seq) tie-breaking.
            delay = 0.0 if rng.random() < 0.2 else rng.uniform(0.0, 40.0)
            handles.append(scheduler.schedule(
                delay, fire, rng.randrange(1000), depth - 1))
        if handles and rng.random() < 0.3:
            handles.pop(rng.randrange(len(handles))).cancel()

    for index in range(ops):
        at = rng.uniform(0.0, 250.0)
        handles.append(scheduler.schedule_at(at, fire, index, 2))
        if rng.random() < 0.15:
            periodics.append(scheduler.every(
                rng.uniform(0.5, 20.0), fire, 10_000 + index, 0,
                delay=rng.uniform(0.0, 30.0)))
        if periodics and rng.random() < 0.25:
            periodics.pop(rng.randrange(len(periodics))).cancel()
        if rng.random() < 0.1:
            log.append(("peek", scheduler.peek_time()))
    horizon = 0.0
    while scheduler.pending_count() and horizon < 400.0:
        horizon += rng.uniform(5.0, 50.0)
        scheduler.run_until(horizon)
        log.append(("clock", scheduler.now, scheduler.pending_count()))
    for task in periodics:
        task.cancel()
    scheduler.run_until(horizon + 60.0)
    log.append(("end", scheduler.now, scheduler.events_processed))
    return log


def equivalence_check(seed: int = 0, ops: int = 300,
                      bucket_width: float = 1.0) -> dict:
    """Drive one random event program through heap and wheel schedulers
    and compare the complete firing logs.  The property suite sweeps
    seeds; CI runs it as the wheel's admission gate."""
    heap_log = _drive_program(HeapEventQueue(), seed, ops)
    wheel_queue = CalendarEventQueue(bucket_width=bucket_width)
    wheel_log = _drive_program(wheel_queue, seed, ops)
    divergence = None
    for index, (lhs, rhs) in enumerate(zip(heap_log, wheel_log)):
        if lhs != rhs:
            divergence = {"index": index, "heap": lhs, "wheel": rhs}
            break
    if divergence is None and len(heap_log) != len(wheel_log):
        divergence = {"index": min(len(heap_log), len(wheel_log)),
                      "heap": "<end>", "wheel": "<end>"}
    return {
        "match": divergence is None,
        "events": len(heap_log),
        "seed": seed,
        "divergence": divergence,
        "wheel_resizes": wheel_queue.resizes,
        "wheel_compactions": wheel_queue.compactions,
    }


_ORACLE_VERDICT: bool | None = None


def oracle_gate() -> bool:
    """Once-per-process self-check gating ``scheduler="wheel"``.

    Cheap (a few hundred events), cached, and loud: a mismatch raises
    rather than letting a silently divergent wheel drive a simulation.
    """
    global _ORACLE_VERDICT
    if _ORACLE_VERDICT is None:
        report = equivalence_check(seed=7, ops=120)
        _ORACLE_VERDICT = report["match"]
        if not _ORACLE_VERDICT:
            raise SimulationError(
                f"calendar wheel failed the heap-equivalence oracle: "
                f"{report['divergence']}")
    elif not _ORACLE_VERDICT:
        raise SimulationError(
            "calendar wheel failed the heap-equivalence oracle earlier "
            "in this process")
    return True
