"""Named, seeded random streams.

Every component that needs randomness asks the world for a stream by
name (``world.rng("facebook-delay")``).  Each name maps to an
independent ``random.Random`` seeded from the root seed and the name,
so adding a new consumer of randomness never perturbs the draws seen
by existing components — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent, reproducibly seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def token(self, name: str, bits: int = 64) -> str:
        """A fixed-width hex token drawn from the named stream.

        Used for trace/span ids: tokens are reproducible from the seed,
        and because each name is an independent stream, a consumer that
        only draws tokens (e.g. the tracer) never perturbs the draws
        seen by any other component.
        """
        return f"{self.stream(name).getrandbits(bits):0{bits // 4}x}"

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"fork:{self.seed}:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
