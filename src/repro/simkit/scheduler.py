"""Deterministic discrete-event scheduler.

The scheduler owns the virtual clock.  Events are ``(time, seq, fn)``
triples kept in a binary heap; ``seq`` is a monotonically increasing
counter so that two events scheduled for the same instant always fire
in scheduling order, making every run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.simkit.errors import SchedulingError


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the entry stays in the heap but is skipped
    when popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


class PeriodicTask:
    """A repeating event with a fixed period.

    The next occurrence is scheduled only after the current one has
    fired, so cancelling from inside the callback works and a slow
    callback never causes events to pile up at the same instant.
    """

    def __init__(self, scheduler: "Scheduler", interval: float,
                 fn: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be > 0, got {interval}")
        self._scheduler = scheduler
        self.interval = interval
        self._fn = fn
        self._args = args
        self._handle: EventHandle | None = None
        self._cancelled = False
        self.fire_count = 0

    def start(self, delay: float = 0.0) -> "PeriodicTask":
        """Arm the task; the first firing happens after ``delay`` seconds."""
        if not self._cancelled and self._handle is None:
            self._handle = self._scheduler.schedule(delay, self._fire)
        return self

    def cancel(self) -> None:
        """Stop the task; safe to call from inside the callback."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._fn(*self._args)
        if not self._cancelled:
            self._handle = self._scheduler.schedule(self.interval, self._fire)


class Scheduler:
    """The event loop: a virtual clock plus a heap of pending events."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[EventHandle] = []
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the absolute simulated instant ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f}, clock already at {self._now:.6f}")
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def every(self, interval: float, fn: Callable[..., Any], *args: Any,
              delay: float = 0.0) -> PeriodicTask:
        """Create and start a :class:`PeriodicTask`."""
        return PeriodicTask(self, interval, fn, args).start(delay)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when nothing is pending."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        self._now = handle.time
        self.events_processed += 1
        handle.fn(*handle.args)
        return True

    def run_until(self, time: float) -> None:
        """Process events up to and including instant ``time``.

        The clock is left exactly at ``time`` even if the queue drains
        early, so back-to-back ``run_until`` calls compose naturally.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot run to t={time:.6f}, clock already at {self._now:.6f}")
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self._now = time

    def run_for(self, duration: float) -> None:
        """Process events for ``duration`` simulated seconds from now."""
        self.run_until(self._now + duration)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally capped); returns events processed."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
