"""Deterministic discrete-event scheduler.

The scheduler owns the virtual clock.  Events are ``(time, seq, fn)``
triples; ``seq`` is a monotonically increasing counter so that two
events scheduled for the same instant always fire in scheduling order,
making every run bit-for-bit reproducible.

Pending events live in a pluggable :class:`EventQueue`.  The default is
a binary heap (:class:`HeapEventQueue`, O(log n) per event over the
whole population); ``repro.simkit.wheel.CalendarEventQueue`` is a
calendar-queue event wheel whose per-event cost depends on bucket
occupancy instead of total population — selected per
:class:`repro.simkit.world.World` via ``scheduler="wheel"`` and gated
by the heap-equivalence oracle in :mod:`repro.simkit.wheel`.  Both
queues pop the unique ``(time, seq)`` minimum, so firing order is
bit-identical whichever backs the scheduler.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.simkit.errors import SchedulingError


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the entry stays in the queue but is skipped
    when popped, which keeps cancellation O(1).  The owning queue is
    notified so it can compact once cancelled entries dominate (see
    :meth:`EventQueue.note_cancel`).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "queue")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.queue: "EventQueue | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue.note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.3f} seq={self.seq} {state}>"


class EventQueue:
    """Interface every scheduler queue implements.

    Invariant shared by all implementations: :meth:`pop` returns the
    live handle with the smallest ``(time, seq)`` — a *total* order, so
    any two conforming queues drive identical simulations.
    """

    #: Queues smaller than this skip compaction entirely — rebuilding a
    #: tiny queue costs more than the dead entries it would reclaim.
    COMPACT_MIN = 64

    def push(self, handle: EventHandle) -> None:
        raise NotImplementedError

    def pop(self) -> EventHandle | None:
        """Remove and return the minimum live handle, or ``None``."""
        raise NotImplementedError

    def peek(self) -> EventHandle | None:
        """The minimum live handle without removing it, or ``None``."""
        raise NotImplementedError

    def live_count(self) -> int:
        raise NotImplementedError

    def note_cancel(self) -> None:
        """Called once per handle when it is cancelled while queued."""
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The default queue: one binary heap over all pending events.

    Cancelled entries are skipped lazily at the top; a compaction sweep
    rebuilds the heap whenever cancelled entries outnumber live ones
    (they used to accumulate without bound when long runs churned
    periodic tasks — the ``EventHandle`` lazy-cancellation leak).
    """

    __slots__ = ("_heap", "_cancelled", "compactions")

    def __init__(self):
        self._heap: list[EventHandle] = []
        #: Cancelled entries still physically present in the heap.
        self._cancelled = 0
        self.compactions = 0

    def push(self, handle: EventHandle) -> None:
        handle.queue = self
        heapq.heappush(self._heap, handle)

    def pop(self) -> EventHandle | None:
        self._drop_cancelled()
        if not self._heap:
            return None
        handle = heapq.heappop(self._heap)
        handle.queue = None
        return handle

    def peek(self) -> EventHandle | None:
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def live_count(self) -> int:
        return len(self._heap) - self._cancelled

    def note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled * 2 > len(self._heap)
                and len(self._heap) >= self.COMPACT_MIN):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify.

        A heap of the same live elements pops in the same ``(time,
        seq)`` order, so compaction is invisible to the simulation."""
        self._heap = [handle for handle in self._heap if not handle.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).queue = None
            self._cancelled -= 1


class PeriodicTask:
    """A repeating event with a fixed period.

    The next occurrence is scheduled only after the current one has
    fired, so cancelling from inside the callback works and a slow
    callback never causes events to pile up at the same instant.
    """

    __slots__ = ("_scheduler", "interval", "_fn", "_args", "_handle",
                 "_cancelled", "fire_count")

    def __init__(self, scheduler: "Scheduler", interval: float,
                 fn: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SchedulingError(f"periodic interval must be > 0, got {interval}")
        self._scheduler = scheduler
        self.interval = interval
        self._fn = fn
        self._args = args
        self._handle: EventHandle | None = None
        self._cancelled = False
        self.fire_count = 0

    def start(self, delay: float = 0.0) -> "PeriodicTask":
        """Arm the task; the first firing happens after ``delay`` seconds."""
        if not self._cancelled and self._handle is None:
            self._handle = self._scheduler.schedule(delay, self._fire)
        return self

    def cancel(self) -> None:
        """Stop the task; safe to call from inside the callback."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._fn(*self._args)
        if not self._cancelled:
            self._handle = self._scheduler.schedule(self.interval, self._fire)


class Scheduler:
    """The event loop: a virtual clock plus a queue of pending events."""

    def __init__(self, start_time: float = 0.0,
                 queue: EventQueue | None = None):
        self._now = float(start_time)
        self._queue: EventQueue = queue if queue is not None \
            else HeapEventQueue()
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def queue(self) -> EventQueue:
        """The backing event queue (heap or calendar wheel)."""
        return self._queue

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at the absolute simulated instant ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:.6f}, clock already at {self._now:.6f}")
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        self._queue.push(handle)
        return handle

    def every(self, interval: float, fn: Callable[..., Any], *args: Any,
              delay: float = 0.0) -> PeriodicTask:
        """Create and start a :class:`PeriodicTask`."""
        return PeriodicTask(self, interval, fn, args).start(delay)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        handle = self._queue.peek()
        return handle.time if handle is not None else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when nothing is pending."""
        handle = self._queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        self.events_processed += 1
        handle.fn(*handle.args)
        return True

    def run_until(self, time: float) -> None:
        """Process events up to and including instant ``time``.

        The clock is left exactly at ``time`` even if the queue drains
        early, so back-to-back ``run_until`` calls compose naturally.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot run to t={time:.6f}, clock already at {self._now:.6f}")
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self._now = time

    def run_for(self, duration: float) -> None:
        """Process events for ``duration`` simulated seconds from now."""
        self.run_until(self._now + duration)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally capped); returns events processed."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return self._queue.live_count()
