"""Discrete-event simulation kernel.

Everything in the reproduction runs on top of this kernel: a virtual
clock, a deterministic event scheduler, named seeded random streams and
a :class:`World` container that wires components together.  The kernel
is deliberately small and dependency-free so that every higher layer
(network, MQTT broker, devices, middleware) shares one notion of time.

The scheduler's pending-event store is pluggable: the default binary
heap (:class:`HeapEventQueue`) or the calendar-queue event wheel
(:class:`repro.simkit.wheel.CalendarEventQueue`) — select per world
with ``World(scheduler="wheel")``.  Both fire the identical
``(time, seq)`` total order (pinned by the equivalence oracle in
:mod:`repro.simkit.wheel`).
"""

from repro.simkit.errors import SimulationError, SchedulingError
from repro.simkit.scheduler import (
    EventHandle,
    EventQueue,
    HeapEventQueue,
    PeriodicTask,
    Scheduler,
)
from repro.simkit.randomness import RandomStreams
from repro.simkit.world import World, build_event_queue

__all__ = [
    "EventHandle",
    "EventQueue",
    "HeapEventQueue",
    "PeriodicTask",
    "RandomStreams",
    "Scheduler",
    "SchedulingError",
    "SimulationError",
    "World",
    "build_event_queue",
]
