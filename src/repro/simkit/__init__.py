"""Discrete-event simulation kernel.

Everything in the reproduction runs on top of this kernel: a virtual
clock, a deterministic event scheduler, named seeded random streams and
a :class:`World` container that wires components together.  The kernel
is deliberately small and dependency-free so that every higher layer
(network, MQTT broker, devices, middleware) shares one notion of time.
"""

from repro.simkit.errors import SimulationError, SchedulingError
from repro.simkit.scheduler import EventHandle, PeriodicTask, Scheduler
from repro.simkit.randomness import RandomStreams
from repro.simkit.world import World

__all__ = [
    "EventHandle",
    "PeriodicTask",
    "RandomStreams",
    "Scheduler",
    "SchedulingError",
    "SimulationError",
    "World",
]
