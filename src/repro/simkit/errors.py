"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at an invalid time.

    The scheduler refuses events in the past: simulated causality only
    moves forward, and silently clamping a negative delay would hide a
    logic error in the calling component.
    """
