"""Setuptools shim.

The evaluation environment has no ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` take the
legacy ``setup.py develop`` path, which works offline.
"""
from setuptools import setup

setup()
